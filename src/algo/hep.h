/// \file hep.h
/// \brief HEP — heterogeneous embedding propagation — and the in-house AHEP
/// (HEP with adaptive sampling, Section 4.2).
///
/// HEP reconstructs each vertex's embedding from *all* neighbors of each
/// node type through a per-type transformation and pulls the reconstruction
/// toward the vertex's own embedding (embedding-propagation loss with
/// negative sampling). AHEP replaces the full neighbor set with a small
/// importance-weighted sample per type (probability proportional to
/// degree-based importance, sized to minimize sampling variance), which cuts
/// both time and memory; Table 7 / Figure 10 show AHEP trading a little
/// accuracy for 2-3x speed and much less memory.

#ifndef ALIGRAPH_ALGO_HEP_H_
#define ALIGRAPH_ALGO_HEP_H_

#include "algo/embedding_algorithm.h"
#include "nn/layers.h"

namespace aligraph {
namespace algo {

/// \brief HEP / AHEP. sample_size == 0 runs full-neighborhood HEP; a
/// positive sample_size runs AHEP with that many sampled neighbors per type.
class Hep : public EmbeddingAlgorithm {
 public:
  struct Config {
    size_t dim = 32;
    uint32_t epochs = 2;
    uint32_t negatives = 2;
    float learning_rate = 0.05f;
    float alpha = 1.0f;       ///< weight of the EP loss (Equation 2)
    float beta = 1e-5f;       ///< L2 regularizer weight (Equation 2)
    size_t sample_size = 0;   ///< 0 = HEP (all neighbors); > 0 = AHEP
    uint64_t seed = 37;
  };

  Hep() = default;
  explicit Hep(Config config) : config_(std::move(config)) {}
  std::string name() const override {
    return config_.sample_size == 0 ? "hep" : "ahep";
  }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

  /// Cost counters of the last Embed run (Figure 10): embedding rows
  /// touched ~ memory traffic, and propagation terms ~ compute.
  size_t rows_touched() const { return rows_touched_; }
  size_t propagation_terms() const { return propagation_terms_; }

 private:
  Config config_;
  size_t rows_touched_ = 0;
  size_t propagation_terms_ = 0;
};

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_HEP_H_
