/// \file gatne.h
/// \brief GATNE — General Attributed Multiplex HeTerogeneous Network
/// Embedding (Section 4.2).
///
/// The per-edge-type embedding of vertex v is (Equation 3)
///
///   h_{v,c} = b_v + alpha_c * M_c^T (U_v a_c) + beta_c * D^T x_v
///
/// with b_v the general (base) embedding, U_v the stack of per-edge-type
/// specific embeddings u_{v,t}, a_c a self-attention over those types, M_c a
/// per-type transformation, x_v the attribute vector and D a shared
/// attribute transformation. Training is random-walk SGNS per edge type
/// (Equation 4) with gradients flowing into every component including the
/// attention parameters.

#ifndef ALIGRAPH_ALGO_GATNE_H_
#define ALIGRAPH_ALGO_GATNE_H_

#include <vector>

#include "algo/embedding_algorithm.h"
#include "nn/layers.h"
#include "nn/walks.h"

namespace aligraph {
namespace algo {

/// \brief The GATNE model.
class Gatne : public EmbeddingAlgorithm {
 public:
  struct Config {
    size_t dim = 32;        ///< base / output dimension d
    size_t spec_dim = 8;    ///< specific embedding dimension s
    size_t att_dim = 8;     ///< attention hidden dimension a
    size_t feature_dim = 16;
    float alpha = 1.0f;     ///< specific-embedding coefficient
    float beta = 0.5f;      ///< attribute-embedding coefficient
    /// GATNE-T style neighbor aggregation of the specific embeddings
    /// (u_eff = mean over sampled same-type neighbors). Disable for the
    /// purely attribute-driven GATNE-I behaviour.
    bool aggregate_specific = true;
    nn::WalkConfig walks;
    uint32_t negatives = 4;
    uint32_t epochs = 2;
    float learning_rate = 0.05f;
    uint64_t seed = 43;
  };

  Gatne() = default;
  explicit Gatne(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "gatne"; }

  /// Primary embedding: the mean of the per-type embeddings h_{v,c}.
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

  /// Per-edge-type embeddings h_{v,c} of the last Embed run.
  const std::vector<nn::Matrix>& per_type_embeddings() const {
    return per_type_;
  }

 private:
  Config config_;
  std::vector<nn::Matrix> per_type_;
};

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_GATNE_H_
