/// \file bayesian.h
/// \brief Bayesian GNN (Section 4.2): corrects task-specific embeddings by
/// integrating knowledge-graph relations through a Bayesian generation
/// model.
///
/// Given base embeddings h_v (from any GNN, GraphSAGE here) and knowledge
/// relations (items sharing a brand or a category), the model learns a
/// correction delta_v with a Gaussian prior N(0, s_v^2) and a projection f
/// such that for related entities v1, v2 the projected corrected embeddings
/// f(h_v1 + delta_v1) and f(h_v2 + delta_v2) are close (the second-order
/// generation model of Equation 7 and the following paragraph). The
/// posterior-mean correction mu_v is then applied: the corrected embedding
/// is f(h_v + mu_v).

#ifndef ALIGRAPH_ALGO_BAYESIAN_H_
#define ALIGRAPH_ALGO_BAYESIAN_H_

#include <vector>

#include "algo/embedding_algorithm.h"
#include "nn/layers.h"

namespace aligraph {
namespace algo {

/// \brief Knowledge relation granularity of the Table 12 experiment.
enum class KnowledgeGranularity { kBrand, kCategory };

/// \brief The Bayesian correction model over a fixed base embedding.
class BayesianCorrection {
 public:
  struct Config {
    uint32_t epochs = 3;
    size_t pairs_per_epoch = 20000;
    float learning_rate = 0.05f;
    float prior_strength = 0.1f;  ///< Gaussian prior pull of delta to 0
    /// Anchor of the projected embedding to the base embedding
    /// (z ~ f(h + delta) must stay a *correction* of h, Equation 7);
    /// without it the trivial solution f = 0 satisfies the pair loss.
    float anchor_strength = 0.5f;
    uint64_t seed = 61;
  };

  BayesianCorrection() = default;
  explicit BayesianCorrection(Config config) : config_(std::move(config)) {}

  /// Learns corrections for the vertices in `groups`: each groups[i] is the
  /// knowledge-group id of vertex `vertices[i]`; vertices sharing a group
  /// are related. Returns corrected embeddings f(h_v + mu_v) for ALL rows
  /// of `base` (vertices without a group keep f(h_v)).
  Result<nn::Matrix> Correct(const nn::Matrix& base,
                             const std::vector<VertexId>& vertices,
                             const std::vector<uint32_t>& groups);

 private:
  Config config_;
};

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_BAYESIAN_H_
