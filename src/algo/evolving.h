/// \file evolving.h
/// \brief Evolving GNN (Section 4.2): vertex representations over a dynamic
/// graph G(1)..G(T), distinguishing *normal* evolution from *burst* links.
///
/// The model trains a GraphSAGE whose weights persist across snapshots
/// (interleaved training), keeps a temporal state per vertex via a gated
/// recurrence over the per-snapshot embeddings (the paper's RNN component),
/// and learns a classifier over candidate pairs that predicts the next
/// snapshot's evolution class {no-edge, normal, burst} from both current and
/// temporal features.
///
/// The TNE comparator (temporal network embedding) smooths per-snapshot
/// DeepWalk embeddings across time; the static GraphSAGE comparator embeds
/// each snapshot independently, as the paper runs its static competitors.

#ifndef ALIGRAPH_ALGO_EVOLVING_H_
#define ALIGRAPH_ALGO_EVOLVING_H_

#include <vector>

#include "algo/gnn.h"
#include "eval/metrics.h"
#include "graph/dynamic_graph.h"

namespace aligraph {
namespace algo {

/// \brief Evolution-class labels for the Table 11 task.
enum class EvolutionClass : uint32_t {
  kNoEdge = 0,
  kNormal = 1,
  kBurst = 2,
};

/// \brief Per-scenario scores of the Table 11 multi-class link prediction.
struct EvolvingScores {
  eval::MultiClassF1 normal;  ///< {no-edge, normal} test subset
  eval::MultiClassF1 burst;   ///< {no-edge, burst} test subset
};

/// \brief How pair features are produced for the evolution classifier.
enum class DynamicEmbedder {
  kEvolvingGnn,      ///< persistent GraphSAGE + temporal recurrence
  kStaticGraphSage,  ///< GraphSAGE on the last training snapshot only
  kTne,              ///< temporally smoothed DeepWalk per snapshot
};

/// \brief Trains the chosen embedder over the dynamic graph, fits the
/// evolution classifier on transitions 1..T-2, and scores the transition to
/// snapshot T. The dynamic graph needs at least 3 timestamps.
class EvolvingGnn {
 public:
  struct Config {
    GnnConfig gnn;
    DynamicEmbedder embedder = DynamicEmbedder::kEvolvingGnn;
    float temporal_gate = 0.7f;  ///< recurrence mix of old state vs new
    uint32_t classifier_epochs = 6;
    float classifier_lr = 0.1f;
    size_t negatives_per_positive = 2;
    uint64_t seed = 59;
  };

  EvolvingGnn() = default;
  explicit EvolvingGnn(Config config) : config_(std::move(config)) {}

  std::string name() const;

  Result<EvolvingScores> Run(const DynamicGraph& dynamic);

 private:
  Config config_;
};

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_EVOLVING_H_
