/// \file hierarchical.h
/// \brief Hierarchical GNN (Section 4.2): learn embeddings layer-to-layer —
/// a base GNN produces Z(1), vertices are pooled into clusters through an
/// assignment matrix S, the coarsened graph A(2) = S^T A S with features
/// X(2) = S^T Z(1) is embedded by a second GNN, and the final representation
/// concatenates the fine embedding with its cluster's coarse embedding.
///
/// Simplification vs. the paper (documented in DESIGN.md): the assignment
/// matrix is a hard clustering (k-means on Z(1)) rather than a softmax
/// pooling GNN trained end-to-end; the hierarchy and the coarse-level GNN
/// are retained, which is what drives the Table 10 gains.

#ifndef ALIGRAPH_ALGO_HIERARCHICAL_H_
#define ALIGRAPH_ALGO_HIERARCHICAL_H_

#include "algo/embedding_algorithm.h"
#include "algo/gnn.h"

namespace aligraph {
namespace algo {

/// \brief Two-level hierarchical GNN over a base GraphSAGE.
class HierarchicalGnn : public EmbeddingAlgorithm {
 public:
  struct Config {
    GnnConfig base;          ///< config of both level GNNs
    size_t clusters = 64;    ///< coarse-level vertex count
    uint32_t kmeans_iters = 8;
    /// Weight of the coarse embedding in the final representation. The
    /// coarse part encodes cluster-level affinity; at full weight it
    /// over-penalizes the (real) cross-cluster edges, so it enters as a
    /// scaled refinement of the fine embedding.
    float coarse_weight = 0.4f;
  };

  HierarchicalGnn() = default;
  explicit HierarchicalGnn(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "hierarchical_gnn"; }

  /// Output dimension is 2 * base.dim (fine || coarse).
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_HIERARCHICAL_H_
