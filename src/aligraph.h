/// \file aligraph.h
/// \brief Umbrella header: includes the whole public AliGraph API.
///
/// Fine-grained targets should include the specific module headers; this
/// header is a convenience for applications and experiments.

#ifndef ALIGRAPH_ALIGRAPH_H_
#define ALIGRAPH_ALIGRAPH_H_

// Common utilities.
#include "common/alias_table.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/lru_cache.h"
#include "common/random.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/timer.h"

// Graph data model.
#include "graph/attributes.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/khop.h"
#include "graph/schema.h"
#include "graph/types.h"

// System layers: partitioning, distributed runtime, storage, sampling,
// subgraph blocks, operators.
#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "block/scaled_csr.h"
#include "cluster/cluster.h"
#include "cluster/comm_model.h"
#include "cluster/graph_server.h"
#include "cluster/request_bucket.h"
#include "ops/hop_cache.h"
#include "ops/operators.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"
#include "storage/importance.h"
#include "storage/neighbor_cache.h"

// Training substrate.
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "nn/skipgram.h"
#include "nn/walks.h"

// Algorithm layer.
#include "algo/bayesian.h"
#include "algo/classic.h"
#include "algo/embedding_algorithm.h"
#include "algo/evolving.h"
#include "algo/gatne.h"
#include "algo/gnn.h"
#include "algo/hep.h"
#include "algo/heterogeneous.h"
#include "algo/hierarchical.h"
#include "algo/mixture.h"

// Synthetic datasets and evaluation.
#include "eval/link_prediction.h"
#include "eval/metrics.h"
#include "gen/dynamic_gen.h"
#include "gen/powerlaw.h"
#include "gen/taobao.h"

#endif  // ALIGRAPH_ALIGRAPH_H_
