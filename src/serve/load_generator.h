/// \file load_generator.h
/// \brief Deterministic request-stream generator for the online serving
/// layer: Zipf-distributed seed vertices over the graph's degree ranking,
/// plus an open-loop Poisson arrival schedule.
///
/// Production GNN serving traffic is skewed — a few hot users / items
/// dominate (the same power law Section 3.2's caching theorems exploit) —
/// so the generator draws each request's seed vertices from a Zipf
/// distribution over vertices ranked by out-degree: rank 0 is the highest-
/// degree vertex. Everything is a pure function of (config seed, request
/// id): roots, per-request sampler seeds, and the open-loop arrival
/// schedule are reproducible across runs, threads and machines, which is
/// what lets the serving bench gate modeled tail latency in CI and lets
/// tests replay any accepted request offline and demand bit-identical
/// embeddings.
///
/// Two driving modes:
///   - OPEN loop: requests arrive on a fixed Poisson schedule regardless of
///     completions (models independent external clients; the mode where
///     queues actually build and tails appear).
///   - CLOSED loop: a fixed population of users each waits for its previous
///     request (plus think time) before issuing the next. Arrival times are
///     completion-dependent, so ServeEngine computes them inside its
///     discrete-event simulation; the generator only supplies each
///     request's roots and seed.

#ifndef ALIGRAPH_SERVE_LOAD_GENERATOR_H_
#define ALIGRAPH_SERVE_LOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "gen/zipf.h"
#include "graph/graph.h"

namespace aligraph {
namespace serve {

/// \brief Shape of the generated request stream.
struct LoadConfig {
  enum class Mode {
    kOpen,    ///< Poisson arrivals at arrival_rate_rps, completion-independent
    kClosed,  ///< num_users clients, each: issue -> wait -> think -> reissue
  };

  Mode mode = Mode::kOpen;
  /// Total requests in the stream.
  uint64_t num_requests = 256;
  /// Seed vertices per request (the k-hop query's batch of roots).
  size_t roots_per_request = 4;
  /// Zipf exponent over the degree ranking; 0 = uniform, ~1 = web-like skew.
  double zipf_exponent = 0.9;
  /// Open loop: mean arrival rate, requests per MODELED second.
  double arrival_rate_rps = 2000.0;
  /// Closed loop: concurrent client population.
  size_t num_users = 8;
  /// Closed loop: modeled think time between a completion and the user's
  /// next request, microseconds.
  double think_time_us = 1000.0;
  uint64_t seed = 17;
};

/// \brief Deterministic request stream over one graph. Immutable after
/// construction; all per-request queries are const and thread-safe.
class LoadGenerator {
 public:
  LoadGenerator(const AttributedGraph& graph, const LoadConfig& config);

  const LoadConfig& config() const { return config_; }

  /// The request's seed vertices: roots_per_request Zipf draws over the
  /// degree ranking. Pure function of (config seed, request id) — calling
  /// twice, in any order, from any thread, returns the same vector.
  std::vector<VertexId> RootsFor(uint64_t request_id) const;

  /// Seed for the request's private NeighborhoodSampler. Deriving one
  /// sampler per request (instead of sharing a stream) is what makes an
  /// accepted request's draws independent of which OTHER requests were
  /// shed or abandoned before it — the precondition for bit-identical
  /// offline replay.
  uint64_t RequestSeed(uint64_t request_id) const;

  /// Open-loop modeled arrival time of request `id`, microseconds from the
  /// stream start. Monotone in id (cumulative exponential gaps). Must only
  /// be called in open mode.
  double OpenArrivalUs(uint64_t request_id) const;

  /// Vertex occupying `rank` in the degree ordering (rank 0 = highest
  /// out-degree; ties break toward the smaller vertex id).
  VertexId VertexAtRank(size_t rank) const { return by_degree_[rank]; }

 private:
  LoadConfig config_;
  std::vector<VertexId> by_degree_;  ///< rank -> vertex, degree-descending
  gen::ZipfSampler zipf_;
  std::vector<double> open_arrivals_;  ///< open mode only; size num_requests
};

}  // namespace serve
}  // namespace aligraph

#endif  // ALIGRAPH_SERVE_LOAD_GENERATOR_H_
