#include "serve/serve_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <queue>
#include <utility>

#include "block/feature_source.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/timer.h"
#include "layout/layout.h"
#include "nn/layers.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "pipeline/block_pipeline.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace serve {

namespace {

/// FNV-1a over the embedding's bytes. Floats are hashed by bit pattern, so
/// two embeddings fingerprint equal iff they are bit-identical — the exact
/// contract the online-vs-offline tests assert.
uint64_t FingerprintMatrix(const nn::Matrix& m) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < m.rows(); ++i) {
    for (const float f : m.Row(i)) {
      uint32_t bits;
      std::memcpy(&bits, &f, sizeof(bits));
      for (int shift = 0; shift < 32; shift += 8) {
        h ^= (bits >> shift) & 0xffu;
        h *= 0x100000001b3ULL;
      }
    }
  }
  return h;
}

size_t BlockEdges(const block::SampledBlock& blk) {
  size_t edges = 0;
  for (const block::BlockHop& hop : blk.hops()) edges += hop.num_edges();
  return edges;
}

void Count(obs::Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Add(n);
}

void Observe(obs::Histogram* h, double v) {
  if (h != nullptr) h->Record(v);
}

}  // namespace

std::string LatencyReport::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "offered=%llu completed=%llu shed=%llu missed=%llu | "
      "p50=%.0fus p95=%.0fus p99=%.0fus p99.9=%.0fus max=%.0fus | "
      "goodput=%.1frps shed=%.1f%% miss=%.1f%% peak_inflight=%zu "
      "attrib_cov=%.4f",
      static_cast<unsigned long long>(offered),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline_missed), p50_us, p95_us,
      p99_us, p999_us, max_us, goodput_rps, 100.0 * shed_rate,
      100.0 * deadline_miss_rate, max_in_flight_observed, attrib_coverage);
  return buf;
}

ServeTimeline::ServeTimeline(double interval_us, size_t windows)
    : offered(interval_us, windows),
      completed(interval_us, windows, obs::LatencyBoundsUs()),
      shed(interval_us, windows),
      missed(interval_us, windows) {}

int64_t ServeTimeline::first_index() const {
  int64_t first = std::numeric_limits<int64_t>::max();
  for (const obs::WindowedSeries* s : {&offered, &completed, &shed, &missed}) {
    if (s->last_index() >= s->first_index()) {
      first = std::min(first, s->first_index());
    }
  }
  return first == std::numeric_limits<int64_t>::max() ? 0 : first;
}

int64_t ServeTimeline::last_index() const {
  int64_t last = -1;
  for (const obs::WindowedSeries* s : {&offered, &completed, &shed, &missed}) {
    last = std::max(last, s->last_index());
  }
  return last;
}

ServeEngine::ServeEngine(const AttributedGraph& graph,
                         const nn::Matrix& features, const ServeConfig& config,
                         const layout::VertexLayout* layout)
    : graph_(graph),
      features_(features),
      config_(config),
      layout_(layout),
      rng_(config.seed),
      layer1_(features.cols(), config.dim, /*maxpool=*/false, rng_),
      layer2_(config.dim, config.dim, /*maxpool=*/false, rng_,
              /*relu=*/false),
      offered_(obs::DefaultCounter("serve.offered")),
      completed_(obs::DefaultCounter("serve.completed")),
      shed_(obs::DefaultCounter("serve.shed")),
      deadline_missed_(obs::DefaultCounter("serve.deadline_missed")),
      modeled_latency_(obs::DefaultHistogram("serve.modeled_latency_us")),
      queue_wait_(obs::DefaultHistogram("serve.queue_wait_us")),
      wall_latency_(obs::DefaultHistogram("serve.wall_latency_us")) {
  ALIGRAPH_CHECK_GT(config_.max_in_flight, 0u);
  ALIGRAPH_CHECK_GT(config_.lanes, 0u);
  ALIGRAPH_CHECK_GT(config_.deadline_us, 0.0);
  ALIGRAPH_CHECK_EQ(features_.rows(), graph_.num_vertices());
  if (layout_ != nullptr) {
    ALIGRAPH_CHECK(
        layout::IsValidPermutation(*layout_, graph_.num_vertices()))
        << "ServeEngine layout must be a permutation of the graph";
  }
}

std::vector<VertexId> ServeEngine::TranslateRoots(const LoadGenerator& gen,
                                                  uint64_t request_id) const {
  std::vector<VertexId> roots = gen.RootsFor(request_id);
  if (layout_ != nullptr) return layout::MapToNew(*layout_, roots);
  return roots;
}

LatencyReport ServeEngine::Run(const LoadGenerator& gen) {
  const LoadConfig& load = gen.config();
  const uint64_t n = load.num_requests;
  const bool closed = load.mode == LoadConfig::Mode::kClosed;
  const std::vector<uint32_t> fans{config_.fanout1, config_.fanout2};

  results_.assign(n, RequestResult{});
  budgets_.assign(n, obs::RequestBudget{});
  timeline_.reset();
  if (config_.timeline_interval_us > 0.0) {
    timeline_ = std::make_unique<ServeTimeline>(config_.timeline_interval_us,
                                                config_.timeline_windows);
  }

  LocalNeighborSource source(graph_);
  block::MatrixFeatureSource feature_source(features_);

  // --- Modeled discrete-event state. Touched ONLY by the pipeline's
  // single-threaded, in-order sample stage, so the simulation is
  // deterministic regardless of how the real lanes interleave.
  std::vector<double> lane_free(config_.lanes, 0.0);
  // Completion times of admitted, unfinished requests.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      inflight;
  // Closed loop: (next issue time, user), earliest first. Users start
  // staggered by one think time so the stream does not begin with a
  // synchronized burst.
  using UserEvent = std::pair<double, size_t>;
  std::priority_queue<UserEvent, std::vector<UserEvent>,
                      std::greater<UserEvent>>
      users;
  if (closed) {
    for (size_t u = 0; u < load.num_users; ++u) {
      users.push({static_cast<double>(u) * load.think_time_us /
                      static_cast<double>(load.num_users),
                  u});
    }
  }
  Summary latencies;  // modeled, completed requests only (sample stage)
  double first_arrival = -1.0;
  double last_event = 0.0;
  size_t peak_inflight = 0;
  uint64_t shed_count = 0;
  uint64_t missed_count = 0;
  // Wall-clock request starts, indexed by id; written on the sample stage,
  // read in compute. Safe: the request's journey through the stage queues
  // orders the two accesses.
  std::vector<Timer> wall_start(n);

  pipeline::PipelineConfig pcfg;
  pcfg.depth = config_.pipeline_depth;
  pcfg.batch_span = "serve/request";
  pcfg.sample_span = "serve/sample";
  pcfg.gather_span = "serve/gather";
  pcfg.compute_span = "serve/compute";
  pipeline::BlockPipeline pipe(pcfg);

  const Status run = pipe.RunStages(
      n,
      /*sample=*/
      [&](size_t id, block::SampledBlock* block, std::any*) -> bool {
        RequestResult& r = results_[id];
        wall_start[id] = Timer();

        double arrival;
        size_t user = 0;
        if (closed) {
          const UserEvent ev = users.top();
          users.pop();
          arrival = ev.first;
          user = ev.second;
        } else {
          arrival = gen.OpenArrivalUs(id);
        }
        r.user = user;
        r.arrival_us = arrival;
        if (first_arrival < 0.0) first_arrival = arrival;
        last_event = std::max(last_event, arrival);
        Count(offered_);
        if (timeline_) timeline_->offered.Count(arrival);

        // The budget's trace id is the batch root minted by the pipeline
        // for this request — the sample callback runs inside its adopted
        // context, so the flight recorder can rematch the trace tree after
        // the run.
        obs::RequestBudget& budget = budgets_[id];
        budget.request_id = id;
        budget.trace_id = obs::CurrentTraceContext().trace_id;

        // 1. Retire everything that finished before this arrival.
        while (!inflight.empty() && inflight.top() <= arrival) inflight.pop();

        // 2. Admission control: bounded in-flight, excess is shed. The
        // sampler is never touched for a shed request.
        if (inflight.size() >= config_.max_in_flight) {
          r.outcome = RequestOutcome::kShed;
          ++shed_count;
          Count(shed_);
          // A shed request spends no modeled time: total stays 0 so it
          // never dilutes attribution coverage, but the outcome is kept so
          // the flight recorder's uniform sample shows sheds in proportion.
          budget.outcome = obs::RequestBudget::Outcome::kShed;
          if (timeline_) timeline_->shed.Count(arrival);
          if (recorder_ != nullptr) recorder_->Offer(budget);
          if (closed) users.push({arrival + load.think_time_us, user});
          return false;
        }

        // 3. Sample the k-hop block (the request must be priced from its
        // actual shape) with a private, id-derived sampler.
        NeighborhoodSampler hood(NeighborStrategy::kUniform,
                                 gen.RequestSeed(id));
        *block = hood.SampleBlock(source, TranslateRoots(gen, id),
                                  NeighborhoodSampler::kAllEdgeTypes, fans);
        // Priced per phase so the request's latency budget decomposes by
        // cause. The sum keeps the original left-to-right association
        // (base + per_edge*E) + per_row*R, so `service` — and every gated
        // serve.* baseline number downstream of it — is bit-identical to
        // the un-decomposed expression.
        const size_t block_edges = BlockEdges(*block);
        const size_t block_rows = block->num_vertices();
        const double sample_us =
            config_.per_edge_us * static_cast<double>(block_edges);
        const double gather_us =
            config_.per_row_us * static_cast<double>(block_rows);
        const double compute_us = config_.base_service_us;
        const double service = compute_us + sample_us + gather_us;

        // 4. Deadline: a request that cannot finish inside its budget is
        // abandoned before it occupies a lane — serving a reply nobody is
        // waiting for is pure waste.
        auto lane = std::min_element(lane_free.begin(), lane_free.end());
        const double start = std::max(arrival, *lane);
        const double finish = start + service;
        if (finish - arrival > config_.deadline_us) {
          r.outcome = RequestOutcome::kDeadlineMissed;
          ++missed_count;
          Count(deadline_missed_);
          // The client waited out its whole budget before giving up: the
          // abandoned request's modeled cost is the deadline, charged to a
          // single component (the wait bought nothing decomposable).
          budget.outcome = obs::RequestBudget::Outcome::kAbandoned;
          budget.total_us = config_.deadline_us;
          budget.at(obs::BudgetComponent::kAbandoned) = config_.deadline_us;
          if (timeline_) {
            timeline_->missed.Count(arrival + config_.deadline_us);
          }
          if (recorder_ != nullptr) {
            recorder_->Offer(budget, {{"sampled_edges", block_edges},
                                      {"block_rows", block_rows}});
          }
          if (closed) {
            users.push(
                {arrival + config_.deadline_us + load.think_time_us, user});
          }
          return false;
        }

        // 5. Admit: charge the lane, record the modeled latency.
        *lane = finish;
        inflight.push(finish);
        peak_inflight = std::max(peak_inflight, inflight.size());
        r.outcome = RequestOutcome::kCompleted;
        r.start_us = start;
        r.finish_us = finish;
        r.latency_us = finish - arrival;
        r.queue_wait_us = start - arrival;
        latencies.Add(r.latency_us);
        Observe(modeled_latency_, r.latency_us);
        Observe(queue_wait_, r.queue_wait_us);
        // Budget the completed request by cause. total_us is derived
        // independently (finish - arrival), so coverage stays an honest
        // accounting check rather than a tautology.
        budget.outcome = obs::RequestBudget::Outcome::kCompleted;
        budget.total_us = r.latency_us;
        budget.at(obs::BudgetComponent::kQueueWait) = r.queue_wait_us;
        budget.at(obs::BudgetComponent::kSample) = sample_us;
        budget.at(obs::BudgetComponent::kGather) = gather_us;
        budget.at(obs::BudgetComponent::kCompute) = compute_us;
        if (timeline_) timeline_->completed.Record(finish, r.latency_us);
        if (recorder_ != nullptr) {
          recorder_->Offer(budget, {{"sampled_edges", block_edges},
                                    {"block_rows", block_rows}});
        }
        last_event = std::max(last_event, finish);
        if (closed) users.push({finish + load.think_time_us, user});
        return true;
      },
      /*gather=*/
      [&](const block::SampledBlock& blk) {
        // No cross-request row cache: each embedding stays a pure function
        // of its own request id (the bit-identical replay contract).
        return block::GatherBlockFeatures(blk, feature_source,
                                          /*row_cache=*/nullptr);
      },
      /*compute=*/
      [&](size_t id, const block::SampledBlock& blk, const nn::Matrix& x,
          std::any&) {
        algo::SageLayer::Cache c_roots, c_h1, c_top;
        const nn::Matrix h1_roots =
            layer1_.ForwardBlock(x, blk.hops()[0], &c_roots);
        const nn::Matrix h1_h1 = layer1_.ForwardBlock(x, blk.hops()[1], &c_h1);
        nn::Matrix h2 =
            layer2_.Forward(h1_roots, h1_h1, config_.fanout1, &c_top);
        nn::L2NormalizeRows(h2);
        results_[id].fingerprint = FingerprintMatrix(h2);
        Count(completed_);
        Observe(wall_latency_, wall_start[id].ElapsedMicros());
      });
  // The lanes are owned by `pipe` and cannot have been shut down here.
  ALIGRAPH_CHECK(run.ok());

  LatencyReport report;
  report.offered = n;
  report.shed = shed_count;
  report.deadline_missed = missed_count;
  report.completed = n - shed_count - missed_count;
  report.max_in_flight_observed = peak_inflight;
  if (latencies.count() > 0) {
    report.p50_us = latencies.Percentile(50.0);
    report.p95_us = latencies.Percentile(95.0);
    report.p99_us = latencies.Percentile(99.0);
    report.p999_us = latencies.Percentile(99.9);
    report.max_us = latencies.max();
  }
  if (first_arrival < 0.0) first_arrival = 0.0;
  report.duration_us = last_event - first_arrival;
  if (report.duration_us > 0.0) {
    report.goodput_rps =
        static_cast<double>(report.completed) / (report.duration_us * 1e-6);
  }
  if (n > 0) {
    report.shed_rate =
        static_cast<double>(shed_count) / static_cast<double>(n);
    report.deadline_miss_rate =
        static_cast<double>(missed_count) / static_cast<double>(n);
  }
  report.attrib_coverage =
      obs::BuildAttributionReport(budgets_).coverage;
  return report;
}

uint64_t ServeEngine::ExecuteOffline(const LoadGenerator& gen,
                                     uint64_t request_id) {
  const std::vector<uint32_t> fans{config_.fanout1, config_.fanout2};
  LocalNeighborSource source(graph_);
  block::MatrixFeatureSource feature_source(features_);
  NeighborhoodSampler hood(NeighborStrategy::kUniform,
                           gen.RequestSeed(request_id));
  block::SampledBlock blk =
      hood.SampleBlock(source, TranslateRoots(gen, request_id),
                       NeighborhoodSampler::kAllEdgeTypes, fans);
  const nn::Matrix x =
      block::GatherBlockFeatures(blk, feature_source, /*row_cache=*/nullptr);
  algo::SageLayer::Cache c_roots, c_h1, c_top;
  const nn::Matrix h1_roots = layer1_.ForwardBlock(x, blk.hops()[0], &c_roots);
  const nn::Matrix h1_h1 = layer1_.ForwardBlock(x, blk.hops()[1], &c_h1);
  nn::Matrix h2 = layer2_.Forward(h1_roots, h1_h1, config_.fanout1, &c_top);
  nn::L2NormalizeRows(h2);
  return FingerprintMatrix(h2);
}

}  // namespace serve
}  // namespace aligraph
