/// \file serve_engine.h
/// \brief Online serving front-end over the block execution path: a stream
/// of k-hop embedding requests with admission control, per-request modeled
/// deadlines, and a tail-latency report suitable for CI gating.
///
/// AliGraph's operators and samplers were built for offline training
/// batches; this subsystem turns the same machinery — SampleBlock ->
/// GatherBlockFeatures -> SageLayer::ForwardBlock — into a request server.
/// Each request carries a batch of Zipf-hot seed vertices (LoadGenerator),
/// runs through pipeline::BlockPipeline's three lanes (sample / gather /
/// compute overlap across in-flight requests exactly as training batches
/// overlap), and is traced end to end: every offered request gets a
/// "serve/request" root span, so the PR 5 Chrome-trace export is the tail-
/// latency debugging tool.
///
/// TWO CLOCKS. The engine keeps a modeled clock and a measured one:
///
///   - The MODELED timeline is a discrete-event simulation of a small
///     serving fleet (config.lanes service lanes, one queue) that runs
///     entirely on the pipeline's single-threaded, in-order sample stage.
///     Admission, queueing, deadlines and the reported latency percentiles
///     all live on this clock, so they are a pure function of (graph,
///     config, load seed) — byte-identical across machines, thread
///     schedules and sanitizers. These are the numbers bench_serve gates
///     against bench/baseline.json. Service cost is charged per request
///     from an explicit cost model (base + per-edge + per-row), mirroring
///     how the cluster's CommModel charges modeled communication.
///   - The MEASURED wall clock times the actual sample/gather/forward work
///     into obs histograms ("serve.wall_latency_us") and the trace. It is
///     reported for eyeballing, never gated.
///
/// CONTROL LOOP, per offered request (modeled clock, sample stage):
///   1. completions with finish <= arrival retire; in-flight = live count.
///   2. admission: in-flight >= max_in_flight -> SHED ("serve.shed",
///      Result::kResourceExhausted semantics — local backpressure, the
///      client may retry). Shed requests never touch the sampler.
///   3. the k-hop block is sampled (the engine must know the request's
///      shape to price it); service = cost model over edges + rows.
///   4. deadline: queue wait + service past deadline_us -> ABANDONED
///      ("serve.deadline_missed") without occupying a lane — a reply the
///      client gave up on is pure waste, so it is never served.
///   5. else the earliest-free lane is charged and the request completes
///      at start + service; its latency (finish - arrival) feeds the
///      report. Gather + forward then run on the real lanes for the
///      measured clock and the embedding bytes.
///
/// BIT-IDENTITY. Every request's draws come from a private sampler seeded
/// by LoadGenerator::RequestSeed(id), and features are gathered with no
/// cross-request row cache, so an accepted request's embedding is a pure
/// function of (graph, features, weights, id) — ExecuteOffline(id) replays
/// it sequentially and must produce the same fingerprint, no matter which
/// neighbors were shed. Tests hold the serving path to that contract.

#ifndef ALIGRAPH_SERVE_SERVE_ENGINE_H_
#define ALIGRAPH_SERVE_SERVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algo/gnn.h"
#include "common/random.h"
#include "graph/graph.h"
#include "nn/matrix.h"
#include "obs/attrib.h"
#include "obs/window.h"
#include "serve/load_generator.h"

namespace aligraph {

namespace obs {
class Counter;
class FlightRecorder;
class Histogram;
}  // namespace obs

namespace layout {
struct VertexLayout;
}  // namespace layout

namespace serve {

/// \brief Serving knobs: model shape, admission bound, deadline, and the
/// modeled service-cost model.
struct ServeConfig {
  /// Per-hop fan-outs of the k-hop query (exactly two hops: the served
  /// model is the repo's two-layer GraphSAGE stack).
  uint32_t fanout1 = 10;
  uint32_t fanout2 = 5;
  size_t dim = 32;  ///< embedding dimension of the served model

  /// Admission bound: offered requests beyond this many in flight are shed.
  size_t max_in_flight = 8;
  /// Modeled service lanes (the simulated fleet's parallelism).
  size_t lanes = 2;
  /// Per-request modeled deadline over queue wait + service, microseconds.
  /// Plays the role RetryPolicy::deadline_us plays for cluster reads: a
  /// modeled budget after which the request is abandoned, never slept on.
  double deadline_us = 50000.0;

  /// Modeled service cost: base_service_us + per_edge_us * sampled edges
  /// + per_row_us * unique feature rows.
  double base_service_us = 50.0;
  double per_edge_us = 0.4;
  double per_row_us = 0.6;

  /// Stage-queue depth of the underlying BlockPipeline.
  size_t pipeline_depth = 2;
  /// Seed for the served model's weight initialization.
  uint64_t seed = 29;

  /// Width of one timeline window on the MODELED clock (see
  /// ServeEngine::timeline). 0 disables the timeline.
  double timeline_interval_us = 10000.0;
  /// Most recent timeline windows retained per series.
  size_t timeline_windows = 1024;
};

/// \brief What happened to one offered request.
enum class RequestOutcome : uint8_t {
  kCompleted = 0,  ///< served within deadline; fingerprint is valid
  kShed,           ///< rejected at admission (in-flight bound)
  kDeadlineMissed, ///< admitted but abandoned: could not finish in time
};

/// \brief Per-request record, index == request id.
struct RequestResult {
  RequestOutcome outcome = RequestOutcome::kShed;
  size_t user = 0;            ///< closed loop: issuing client
  double arrival_us = 0;      ///< modeled
  double start_us = 0;        ///< modeled service start (completed only)
  double finish_us = 0;       ///< modeled completion (completed only)
  double latency_us = 0;      ///< modeled finish - arrival (completed only)
  double queue_wait_us = 0;   ///< modeled start - arrival (completed only)
  uint64_t fingerprint = 0;   ///< hash of the embedding bytes (completed only)
};

/// \brief The serving run's headline numbers. All latency fields are on the
/// MODELED clock — deterministic, hence gateable.
struct LatencyReport {
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t deadline_missed = 0;

  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;

  /// Completed requests per modeled second of stream duration.
  double goodput_rps = 0;
  double shed_rate = 0;           ///< shed / offered
  double deadline_miss_rate = 0;  ///< deadline_missed / offered
  /// Modeled stream duration: last completion (or arrival) minus first
  /// arrival, microseconds.
  double duration_us = 0;
  /// High-water mark of concurrently admitted requests — the admission
  /// test asserts this never exceeds max_in_flight.
  size_t max_in_flight_observed = 0;
  /// Attribution coverage: sum of per-request budget components divided by
  /// the total modeled latency, over every request with nonzero latency.
  /// Deterministic, gated >= 0.95 in bench/baseline.json — a new modeled
  /// latency source that forgets to declare a budget component fails the
  /// gate instead of silently rotting the breakdown (DESIGN.md §16).
  double attrib_coverage = 1.0;

  std::string ToString() const;
};

/// \brief Per-series modeled-clock timelines of one serving run (see
/// obs::WindowedSeries): arrivals, completions (latency-valued, so
/// percentile-over-window works), sheds and deadline misses share one
/// window grid. Rebuilt by every Run().
struct ServeTimeline {
  ServeTimeline(double interval_us, size_t windows);

  obs::WindowedSeries offered;    ///< arrivals, counted at arrival time
  obs::WindowedSeries completed;  ///< latencies, recorded at finish time
  obs::WindowedSeries shed;       ///< counted at the (instant) rejection
  obs::WindowedSeries missed;     ///< counted when the client gave up

  /// Union index range over the four series, for aligned walking.
  int64_t first_index() const;
  int64_t last_index() const;
};

/// \brief Serves embedding requests over one graph + feature matrix with a
/// freshly initialized (deterministic) two-layer GraphSAGE stack. The graph
/// and features must outlive the engine.
class ServeEngine {
 public:
  /// When `layout` is non-null, `graph` and `features` are expected in the
  /// layout's NEW (reordered) id space — features permuted through
  /// layout::PermuteRows — while the LoadGenerator and everything reported
  /// keep speaking ORIGINAL ids. Request roots are translated on entry, so
  /// a reordered engine is a drop-in replacement: the layout invariance
  /// tests hold its per-request fingerprints bit-equal to an identity
  /// engine's. `layout` must outlive the engine.
  ServeEngine(const AttributedGraph& graph, const nn::Matrix& features,
              const ServeConfig& config,
              const layout::VertexLayout* layout = nullptr);

  /// Runs the generator's full request stream through the serving pipeline.
  /// Blocks until every offered request is accounted for (completed, shed,
  /// or deadline-missed). Callable repeatedly; each call starts a fresh
  /// modeled timeline and overwrites results().
  LatencyReport Run(const LoadGenerator& gen);

  /// Per-request outcomes of the last Run, indexed by request id.
  const std::vector<RequestResult>& results() const { return results_; }

  /// Per-request latency budgets of the last Run, indexed by request id
  /// (see obs::RequestBudget). Every offered request has one; shed
  /// requests carry a zero total.
  const std::vector<obs::RequestBudget>& budgets() const { return budgets_; }

  /// Windowed timeline of the last Run; null before the first Run or when
  /// config.timeline_interval_us == 0.
  const ServeTimeline* timeline() const { return timeline_.get(); }

  /// Installs a flight recorder to Offer() every retired request to during
  /// Run(). Not owned; must outlive the engine or be detached (nullptr).
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Replays request `id` through the sequential offline path (same roots,
  /// same per-request seed, no pipeline, no admission) and returns the
  /// embedding fingerprint. For any request Run() completed, this must
  /// equal results()[id].fingerprint bit for bit.
  uint64_t ExecuteOffline(const LoadGenerator& gen, uint64_t request_id);

  const ServeConfig& config() const { return config_; }

 private:
  /// Roots from `gen` (original ids) mapped into the engine's own id space
  /// (the identity when no layout is installed).
  std::vector<VertexId> TranslateRoots(const LoadGenerator& gen,
                                       uint64_t request_id) const;

  const AttributedGraph& graph_;
  const nn::Matrix& features_;
  ServeConfig config_;
  const layout::VertexLayout* layout_ = nullptr;
  Rng rng_;
  algo::SageLayer layer1_;
  algo::SageLayer layer2_;
  std::vector<RequestResult> results_;
  std::vector<obs::RequestBudget> budgets_;
  std::unique_ptr<ServeTimeline> timeline_;
  obs::FlightRecorder* recorder_ = nullptr;

  // Handles from the default registry at construction (null when detached).
  obs::Counter* offered_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* deadline_missed_ = nullptr;
  obs::Histogram* modeled_latency_ = nullptr;
  obs::Histogram* queue_wait_ = nullptr;
  obs::Histogram* wall_latency_ = nullptr;
};

}  // namespace serve
}  // namespace aligraph

#endif  // ALIGRAPH_SERVE_SERVE_ENGINE_H_
