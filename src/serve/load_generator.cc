#include "serve/load_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace aligraph {
namespace serve {

namespace {

/// Domain-separation constants so the roots stream, the sampler-seed
/// stream and the arrival stream never overlap even for adjacent ids.
constexpr uint64_t kRootsSalt = 0x726f6f7473ULL;      // "roots"
constexpr uint64_t kSamplerSalt = 0x73616d706cULL;    // "sampl"
constexpr uint64_t kArrivalSalt = 0x6172726976ULL;    // "arriv"

}  // namespace

LoadGenerator::LoadGenerator(const AttributedGraph& graph,
                             const LoadConfig& config)
    : config_(config),
      zipf_(gen::ZipfConfig{
          static_cast<size_t>(std::max<VertexId>(graph.num_vertices(), 1)),
          config.zipf_exponent, config.seed}) {
  ALIGRAPH_CHECK_GT(graph.num_vertices(), 0u);
  ALIGRAPH_CHECK_GT(config_.roots_per_request, 0u);

  // Degree ranking: rank r -> r-th highest out-degree vertex. Ties break
  // toward the smaller id so the ranking is deterministic for a fixed graph.
  by_degree_.resize(graph.num_vertices());
  std::iota(by_degree_.begin(), by_degree_.end(), VertexId{0});
  std::sort(by_degree_.begin(), by_degree_.end(),
            [&graph](VertexId a, VertexId b) {
              const size_t da = graph.OutDegree(a);
              const size_t db = graph.OutDegree(b);
              if (da != db) return da > db;
              return a < b;
            });

  if (config_.mode == LoadConfig::Mode::kOpen) {
    ALIGRAPH_CHECK_GT(config_.arrival_rate_rps, 0.0);
    // Poisson process: i.i.d. exponential gaps with mean 1/rate, summed
    // into absolute arrival times. One dedicated stream, so the schedule
    // never shifts when per-request draws change.
    open_arrivals_.resize(config_.num_requests);
    Rng rng(Mix64(config_.seed ^ kArrivalSalt));
    const double mean_gap_us = 1e6 / config_.arrival_rate_rps;
    double t = 0.0;
    for (uint64_t i = 0; i < config_.num_requests; ++i) {
      double u = rng.NextDouble();
      if (u >= 1.0) u = std::nextafter(1.0, 0.0);
      t += -std::log(1.0 - u) * mean_gap_us;
      open_arrivals_[i] = t;
    }
  } else {
    ALIGRAPH_CHECK_GT(config_.num_users, 0u);
  }
}

std::vector<VertexId> LoadGenerator::RootsFor(uint64_t request_id) const {
  // A private RNG per request, seeded from (config seed, id): draw order
  // across requests cannot matter. The ranks are drawn through the alias
  // table's batched path, which consumes the stream draw-for-draw like the
  // scalar loop — roots (and everything downstream of them) are unchanged.
  Rng rng(Mix64(config_.seed ^ kRootsSalt ^ Mix64(request_id + 1)));
  std::vector<size_t> ranks(config_.roots_per_request);
  zipf_.SampleBatch(rng, ranks);
  std::vector<VertexId> roots(config_.roots_per_request);
  for (size_t i = 0; i < ranks.size(); ++i) {
    roots[i] = by_degree_[ranks[i]];
  }
  return roots;
}

uint64_t LoadGenerator::RequestSeed(uint64_t request_id) const {
  return Mix64(config_.seed ^ kSamplerSalt ^ Mix64(request_id + 0x9e3779b9ULL));
}

double LoadGenerator::OpenArrivalUs(uint64_t request_id) const {
  ALIGRAPH_CHECK(config_.mode == LoadConfig::Mode::kOpen);
  ALIGRAPH_CHECK_LT(request_id, open_arrivals_.size());
  return open_arrivals_[request_id];
}

}  // namespace serve
}  // namespace aligraph
