/// \file cluster.h
/// \brief The simulated distributed graph: a set of GraphServers built by a
/// pluggable partitioner, with cache-aware, communication-counted neighbor
/// access.
///
/// Simulation of parallel build time: workers are processed one after the
/// other on this machine, each timed individually; the reported parallel
/// build time is the *maximum* per-worker time plus the (parallelizable)
/// distribution pass divided by the worker count — i.e. the critical path a
/// real cluster would see. The serial comparator (NaiveLockedBuildMillis)
/// mimics a PowerGraph-style globally synchronized loader.

#ifndef ALIGRAPH_CLUSTER_CLUSTER_H_
#define ALIGRAPH_CLUSTER_CLUSTER_H_

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cluster/comm_model.h"
#include "cluster/epoch.h"
#include "cluster/graph_server.h"
#include "cluster/request_bucket.h"
#include "common/status.h"
#include "fault/fault_injector.h"
#include "fault/retry_policy.h"
#include "graph/graph.h"
#include "partition/partitioner.h"

namespace aligraph {

namespace obs {
class Counter;
}  // namespace obs

/// \brief Timing breakdown of a distributed build (Figure 7).
struct ClusterBuildReport {
  double partition_ms = 0;       ///< partitioning the vertex set
  double distribute_ms = 0;      ///< routing edges to workers (total work)
  double max_worker_build_ms = 0;  ///< slowest single worker's local build
  double simulated_parallel_ms = 0;  ///< critical-path estimate
  double serial_ms = 0;          ///< sum of all work (1-worker equivalent)
  PartitionStats partition_stats;
  std::string ToString() const;
};

/// \brief One online edge mutation. Inserts append (dst, weight, attr) to
/// src's adjacency under `type`; removes delete the first neighbor of src
/// matching (dst, type). Vertex attributes are immutable under updates.
struct EdgeUpdate {
  enum class Kind : uint8_t { kInsert, kRemove };
  Kind kind = Kind::kInsert;
  VertexId src = 0;
  VertexId dst = 0;
  EdgeType type = 0;
  float weight = 1.0f;
  AttrId attr = kNoAttr;
};

/// \brief Outcome of one ApplyUpdateBatch call.
struct UpdateReport {
  uint64_t epoch = 0;    ///< the epoch this batch became visible at
  size_t applied = 0;    ///< updates applied
  size_t skipped = 0;    ///< out-of-range sources / removes with no match
  size_t versions_pruned = 0;  ///< retired versions reclaimed this batch
};

/// \brief A distributed AttributedGraph over p simulated workers.
class Cluster {
 public:
  /// Partitions `graph` with `partitioner` and builds per-worker storage.
  /// The graph must outlive the cluster. Fills `report` when non-null.
  static Result<Cluster> Build(const AttributedGraph& graph,
                               const Partitioner& partitioner,
                               uint32_t num_workers,
                               ClusterBuildReport* report = nullptr);

  uint32_t num_workers() const {
    return static_cast<uint32_t>(servers_.size());
  }
  WorkerId OwnerOf(VertexId v) const { return plan_.OwnerOf(v); }
  GraphServer& server(WorkerId w) { return *servers_[w]; }
  const GraphServer& server(WorkerId w) const { return *servers_[w]; }
  const AttributedGraph& graph() const { return *graph_; }
  const Placement& plan() const { return plan_; }

  /// Neighbor read issued by worker `from`, resolved as of `epoch`
  /// (kEpochCurrent = the latest published state). Serve order is cheapest
  /// copy first: local when `from` owns v, then `from`'s replica copy, then
  /// `from`'s neighbor cache, then a counted remote fetch from the serving
  /// worker Placement::ServingWorker picks (the owner when v is
  /// unreplicated). All paths return the same data for the same epoch.
  std::span<const Neighbor> GetNeighbors(WorkerId from, VertexId v,
                                         CommStats* stats,
                                         uint64_t epoch = kEpochCurrent);

  /// Same, restricted to one edge type. Cache hits at type granularity are
  /// conservative: a cached vertex serves all its types.
  std::span<const Neighbor> GetNeighbors(WorkerId from, VertexId v,
                                         EdgeType type, CommStats* stats,
                                         uint64_t epoch = kEpochCurrent);

  /// Batched neighbor read issued by worker `from`: out->spans[i] is the
  /// adjacency of batch[i] (all types when `type` == kAllEdgeTypes). The
  /// batch is split into owned / cache-hit / remote partitions; the remote
  /// residue is deduplicated and coalesced into ONE request per destination
  /// worker, drained through the lock-free request buckets (one vertex
  /// group per destination server, so same-group reads stay sequential).
  /// Accounting: owned and cached slots count per occurrence; each unique
  /// remote vertex counts one remote_read + one batched_remote_read
  /// (duplicates ride the same response payload for free), and each
  /// contacted worker counts one remote_batch — at most num_workers - 1
  /// per call. Returns the same bytes as per-vertex GetNeighbors.
  void GetNeighborsBatch(WorkerId from, std::span<const VertexId> batch,
                         EdgeType type, BatchResult* out, CommStats* stats,
                         uint64_t epoch = kEpochCurrent);

  /// Fallible variants of the read paths, used when fault injection is
  /// active. The first attempt plus up to retry_policy().max_attempts - 1
  /// retries (exponential backoff with decorrelated jitter, modeled — see
  /// RetryPolicy) are judged by the installed FaultInjector; backoff time
  /// and failed attempts are charged to `stats` (retry_attempts,
  /// retry_backoff_us, faults_injected, failed_reads) so
  /// CommModel::ModeledMillis reflects the faults. With no injector
  /// installed these behave exactly like the infallible paths and always
  /// succeed. Exhausted retries return Unavailable; local and cache-served
  /// reads never fail (faults model the network, not local storage).
  Result<std::span<const Neighbor>> TryGetNeighbors(
      WorkerId from, VertexId v, CommStats* stats,
      uint64_t epoch = kEpochCurrent);
  Result<std::span<const Neighbor>> TryGetNeighbors(
      WorkerId from, VertexId v, EdgeType type, CommStats* stats,
      uint64_t epoch = kEpochCurrent);

  /// Fallible batched read: each coalesced per-worker request is judged
  /// once (one fault decision per message, matching the real failure
  /// domain). Failed requests mark their slots out->ok[i] = 0 and leave the
  /// spans empty; successful slots are exactly GetNeighborsBatch's output.
  /// Returns OK when every slot resolved, Unavailable when any failed.
  Status TryGetNeighborsBatch(WorkerId from, std::span<const VertexId> batch,
                              EdgeType type, BatchResult* out,
                              CommStats* stats,
                              uint64_t epoch = kEpochCurrent);

  /// Fallible attribute fetch: local attrs are free; remote attrs cost one
  /// (retryable) individual message. kNoAttr for vertices without attrs.
  Result<AttrId> TryGetVertexAttr(WorkerId from, VertexId v, CommStats* stats);

  /// Batched attribute fetch issued by worker `from`: (*ids)[i] is the
  /// AttrId of batch[i] (kNoAttr for vertices without attributes). Mirrors
  /// GetNeighborsBatch's shape: owned slots resolve locally per occurrence;
  /// the remote residue is deduplicated and coalesced into ONE message per
  /// destination worker. Each unique remote vertex counts one remote_read +
  /// one batched_remote_read, each contacted worker one remote_batch.
  void GetVertexAttrBatch(WorkerId from, std::span<const VertexId> batch,
                          std::vector<AttrId>* ids, CommStats* stats);

  /// Fallible batched attribute fetch: each coalesced per-worker message is
  /// judged once by the retry loop. Slots of a failed message get
  /// (*ids)[i] = kNoAttr and (*ok)[i] = 0 (when `ok` is non-null);
  /// successful slots match GetVertexAttrBatch's output. Returns OK when
  /// every slot resolved, Unavailable when any failed.
  Status TryGetVertexAttrBatch(WorkerId from, std::span<const VertexId> batch,
                               std::vector<AttrId>* ids,
                               std::vector<uint8_t>* ok, CommStats* stats);

  /// Applies a batch of edge inserts/removes concurrently with sampling
  /// reads. The whole batch becomes visible atomically at one new epoch on
  /// every server holding a copy of a touched vertex (primary and
  /// replicas); readers pinned at older epochs keep seeing the old
  /// adjacency. Versions no pinned reader can still reach are reclaimed
  /// (reported via UpdateReport::versions_pruned). Out-of-range sources and
  /// removes with no matching (dst, type) are skipped, not errors.
  /// Concurrent ApplyUpdateBatch calls serialize on an internal mutex.
  Status ApplyUpdateBatch(std::span<const EdgeUpdate> updates,
                          UpdateReport* report = nullptr);

  /// Registers a reader at the current epoch. Pass pin.epoch() as the
  /// `epoch` argument of every read of a multi-read scope (a whole k-hop)
  /// to make the scope see exactly one epoch. The pin also blocks
  /// reclamation of the versions it can reach; spans returned for a pinned
  /// epoch stay valid until the pin is released.
  EpochPin PinEpoch() { return epochs_->Acquire(); }

  /// Latest published epoch (0 = never updated).
  uint64_t current_epoch() const { return epochs_->current(); }

  /// True once any update batch has been applied.
  bool versioned() const { return epochs_->versioned(); }

  /// Per-worker count of reads this worker serviced (local + replica +
  /// cache hits count for the reading worker; remote reads for the serving
  /// worker). The measured form of PartitionStats::hot_server_share.
  std::vector<uint64_t> ServedReadsSnapshot() const;
  void ResetServedReads();

  /// Installs deterministic fault injection + the retry policy applied to
  /// the TryGet* read paths. An inactive config (all probabilities zero, no
  /// schedule) leaves every path byte-identical to the uninjected cluster.
  void InstallFaultInjection(FaultConfig config, RetryPolicy policy = {});

  /// Removes fault injection; all read paths are infallible again.
  void ClearFaultInjection();

  bool fault_injection_enabled() const {
    return injector_ != nullptr && injector_->enabled();
  }
  const FaultInjector* fault_injector() const { return injector_.get(); }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Installs the paper's importance-based cache on every worker: vertices
  /// with Imp_k >= taus[k-1] for any k <= depth get their out-neighbors
  /// replicated to all workers. Returns the fraction of vertices cached.
  double InstallImportanceCache(int depth, const std::vector<double>& taus);

  /// Pins the out-neighbors of the top-`fraction` vertices by importance.
  void InstallTopImportanceCache(int k, double fraction);

  /// Pins a uniformly random `fraction` of vertices (Fig. 9 comparator).
  void InstallRandomCache(double fraction, uint64_t seed);

  /// Installs a reactive LRU cache of `capacity_vertices` per worker.
  void InstallLruCache(size_t capacity_vertices);

  /// Removes all caches.
  void ClearCaches();

 private:
  Cluster() = default;

  /// Lazily constructed request-bucket executor shared by batched reads
  /// (consumer threads are only spawned once a batched call happens).
  BucketExecutor& executor();

  /// Registry handles mirroring the CommStats fields, resolved at Build
  /// time from the default metrics registry (all null when observability is
  /// detached — attach the registry before building the cluster). Every
  /// access path increments both its CommStats counter and, when attached,
  /// the matching "comm.*" registry counter, so the registry view stays
  /// consistent with any Snapshot::Delta over the same window.
  struct CommCounters {
    obs::Counter* local_reads = nullptr;
    obs::Counter* replica_reads = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* remote_reads = nullptr;
    obs::Counter* remote_batches = nullptr;
    obs::Counter* batched_remote_reads = nullptr;
    obs::Counter* retry_attempts = nullptr;
    obs::Counter* retry_backoff_us = nullptr;
    obs::Counter* failed_reads = nullptr;
  };

  /// Runs the retry loop for one remote request (one message): judges up
  /// to retry_policy_.max_attempts attempts against the injector, charging
  /// faults, retries and modeled backoff to `stats` and the registry.
  /// Returns true when some attempt succeeded within the deadline. Always
  /// true when no injector is active.
  bool RemoteRequestSucceeds(WorkerId from, WorkerId to, uint64_t request_key,
                             CommStats* stats);

  /// Shared implementation of the batched read. With `fallible` false this
  /// is exactly the historical GetNeighborsBatch (every slot resolves, no
  /// injector branch is evaluated); with `fallible` true each coalesced
  /// per-worker request is judged by the retry loop first.
  Status GetNeighborsBatchImpl(WorkerId from, std::span<const VertexId> batch,
                               EdgeType type, BatchResult* out,
                               CommStats* stats, bool fallible,
                               uint64_t epoch);

  /// Shared implementation of the batched attribute read; `fallible` works
  /// as in GetNeighborsBatchImpl. Attribute payloads are scalar ids, so
  /// responses are served inline on the calling thread (no executor hop).
  Status GetVertexAttrBatchImpl(WorkerId from, std::span<const VertexId> batch,
                                std::vector<AttrId>* ids,
                                std::vector<uint8_t>* ok, CommStats* stats,
                                bool fallible);

  /// Vertex -> epoch of its FIRST update. A cached entry (always pre-update
  /// data, because dirty vertices are never admitted) is valid for a read
  /// at epoch e iff e < first-update epoch; otherwise the cache is bypassed
  /// and the stale entry invalidated on the reading thread.
  using DirtyMap = std::unordered_map<VertexId, uint64_t>;
  std::shared_ptr<const DirtyMap> dirty_snapshot() const;
  /// True when the cache must be skipped for a read of v at epoch e (the
  /// vertex was updated at or before e); also drops the stale entry.
  /// Mutates the cache, so it runs on the reading worker's thread like all
  /// other cache traffic.
  bool BypassCache(NeighborCache* cache, VertexId v, uint64_t e);
  /// Resolves the kEpochCurrent sentinel once per call so a whole batch
  /// reads one epoch even unpinned. Cheap no-op on never-updated clusters.
  uint64_t ResolveEpoch(uint64_t epoch) const {
    if (epoch == kEpochCurrent && epochs_->versioned()) {
      return epochs_->current();
    }
    return epoch;
  }
  void CountServed(WorkerId worker, uint64_t n = 1) {
    served_reads_[worker].fetch_add(n, std::memory_order_relaxed);
  }

  const AttributedGraph* graph_ = nullptr;
  CommCounters obs_;
  Placement plan_;
  std::vector<std::unique_ptr<GraphServer>> servers_;
  std::unique_ptr<std::mutex> executor_mu_ = std::make_unique<std::mutex>();
  std::unique_ptr<BucketExecutor> executor_;
  std::unique_ptr<FaultInjector> injector_;
  RetryPolicy retry_policy_;
  std::unique_ptr<EpochManager> epochs_ = std::make_unique<EpochManager>();
  /// Serializes writers; readers never take it.
  std::unique_ptr<std::mutex> update_mu_ = std::make_unique<std::mutex>();
  /// Guards the dirty-map pointer swap only (copy-on-write contents).
  std::unique_ptr<std::mutex> dirty_mu_ = std::make_unique<std::mutex>();
  std::shared_ptr<const DirtyMap> dirty_;
  /// One counter per worker (unique_ptr keeps Cluster movable).
  std::unique_ptr<std::atomic<uint64_t>[]> served_reads_;
};

/// Serial comparator for Fig. 7: builds one global adjacency map taking a
/// global mutex per edge, the way a naive synchronized loader would.
/// Returns elapsed milliseconds.
double NaiveLockedBuildMillis(const AttributedGraph& graph);

}  // namespace aligraph

#endif  // ALIGRAPH_CLUSTER_CLUSTER_H_
