#include "cluster/cluster.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/importance.h"

namespace aligraph {

std::string ClusterBuildReport::ToString() const {
  std::ostringstream os;
  os << "partition=" << partition_ms << "ms distribute=" << distribute_ms
     << "ms max_worker=" << max_worker_build_ms
     << "ms parallel~=" << simulated_parallel_ms << "ms serial=" << serial_ms
     << "ms " << partition_stats.ToString();
  return os.str();
}

Result<Cluster> Cluster::Build(const AttributedGraph& graph,
                               const Partitioner& partitioner,
                               uint32_t num_workers,
                               ClusterBuildReport* report) {
  if (num_workers == 0) return Status::InvalidArgument("num_workers == 0");
  Cluster cluster;
  cluster.graph_ = &graph;

  Timer total;
  Timer phase;
  ALIGRAPH_ASSIGN_OR_RETURN(cluster.plan_,
                            partitioner.Partition(graph, num_workers));
  const double partition_ms = phase.ElapsedMillis();

  const size_t num_types = graph.num_edge_types();
  cluster.servers_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    cluster.servers_.push_back(
        std::make_unique<GraphServer>(w, num_types));
  }

  // Distribution pass: route every vertex and out-edge to its owner. This
  // is per-source parallelizable; the per-worker share is distribute/p.
  phase.Reset();
  const VertexId n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    GraphServer& srv = *cluster.servers_[cluster.plan_.OwnerOf(v)];
    srv.AddVertex(v, graph.vertex_attr(v));
    for (size_t t = 0; t < num_types; ++t) {
      for (const Neighbor& nb : graph.OutNeighbors(v, static_cast<EdgeType>(t))) {
        srv.AddEdge(v, static_cast<EdgeType>(t), nb);
      }
    }
  }
  const double distribute_ms = phase.ElapsedMillis();

  // Local build per worker, timed individually; the slowest worker defines
  // the simulated parallel critical path.
  double max_worker_ms = 0;
  double sum_worker_ms = 0;
  for (auto& srv : cluster.servers_) {
    Timer worker_timer;
    srv->Finalize();
    const double ms = worker_timer.ElapsedMillis();
    max_worker_ms = std::max(max_worker_ms, ms);
    sum_worker_ms += ms;
  }

  if (report != nullptr) {
    report->partition_ms = partition_ms;
    report->distribute_ms = distribute_ms;
    report->max_worker_build_ms = max_worker_ms;
    report->simulated_parallel_ms =
        partition_ms + distribute_ms / num_workers + max_worker_ms;
    report->serial_ms = partition_ms + distribute_ms + sum_worker_ms;
    report->partition_stats = ComputePartitionStats(graph, cluster.plan_);
  }

  if (obs::MetricsRegistry* reg = obs::Default()) {
    cluster.obs_.local_reads = reg->GetCounter("comm.local_reads");
    cluster.obs_.cache_hits = reg->GetCounter("comm.cache_hits");
    cluster.obs_.remote_reads = reg->GetCounter("comm.remote_reads");
    cluster.obs_.remote_batches = reg->GetCounter("comm.remote_batches");
    cluster.obs_.batched_remote_reads =
        reg->GetCounter("comm.batched_remote_reads");
    reg->GetGauge("cluster.workers")->Set(num_workers);
    reg->GetGauge("cluster.vertices")->Set(static_cast<double>(n));
    reg->GetGauge("cluster.edges")
        ->Set(static_cast<double>(graph.num_edges()));
  }
  return cluster;
}

std::span<const Neighbor> Cluster::GetNeighbors(WorkerId from, VertexId v,
                                                CommStats* stats) {
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    return servers_[owner]->Neighbors(v);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  if (cache != nullptr) {
    auto hit = cache->Lookup(v);
    if (hit.has_value()) {
      if (stats != nullptr) stats->cache_hits.fetch_add(1);
      if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
      return *hit;
    }
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  const auto nbs = servers_[owner]->Neighbors(v);
  if (cache != nullptr) cache->OnRemoteFetch(v, nbs);
  return nbs;
}

std::span<const Neighbor> Cluster::GetNeighbors(WorkerId from, VertexId v,
                                                EdgeType type,
                                                CommStats* stats) {
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    return servers_[owner]->Neighbors(v, type);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  if (cache != nullptr && cache->Lookup(v).has_value()) {
    // The pinned copy holds all types; serve the typed view from the owner's
    // layout (same bytes) while charging a cache hit.
    if (stats != nullptr) stats->cache_hits.fetch_add(1);
    if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
    return servers_[owner]->Neighbors(v, type);
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  const auto all = servers_[owner]->Neighbors(v);
  if (cache != nullptr) cache->OnRemoteFetch(v, all);
  return servers_[owner]->Neighbors(v, type);
}

BucketExecutor& Cluster::executor() {
  std::lock_guard<std::mutex> lock(*executor_mu_);
  if (executor_ == nullptr) {
    // One bucket lane per destination server (capped): requests to the same
    // server serialize through its lane, different servers run in parallel.
    const size_t buckets = std::min<size_t>(num_workers(), 8);
    executor_ = std::make_unique<BucketExecutor>(buckets);
  }
  return *executor_;
}

void Cluster::GetNeighborsBatch(WorkerId from,
                                std::span<const VertexId> batch,
                                EdgeType type, BatchResult* out,
                                CommStats* stats) {
  obs::ScopedSpan span("cluster/batch_read");
  const bool all_types = type == kAllEdgeTypes;
  out->Reset(batch.size());
  NeighborCache* cache = servers_[from]->neighbor_cache();

  // Partition the batch: owned and cache-hit slots resolve immediately;
  // the remote residue is deduplicated and grouped by destination worker.
  uint64_t local_count = 0;
  uint64_t hit_count = 0;
  // unique remote vertex -> slots in `batch` that asked for it
  std::unordered_map<VertexId, std::vector<uint32_t>> remote_slots;
  std::vector<std::vector<VertexId>> per_worker(servers_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const VertexId v = batch[i];
    const WorkerId owner = plan_.OwnerOf(v);
    if (owner == from) {
      out->spans[i] = all_types ? servers_[owner]->Neighbors(v)
                                : servers_[owner]->Neighbors(v, type);
      ++local_count;
      continue;
    }
    if (cache != nullptr) {
      auto hit = cache->Lookup(v);
      if (hit.has_value()) {
        // The pinned copy holds all types; the typed view is served from
        // the owner's layout (same bytes) while charging a cache hit.
        out->spans[i] = all_types ? *hit : servers_[owner]->Neighbors(v, type);
        ++hit_count;
        continue;
      }
    }
    auto [it, inserted] = remote_slots.try_emplace(v);
    if (inserted) per_worker[owner].push_back(v);
    it->second.push_back(static_cast<uint32_t>(i));
  }

  // Coalesce: ONE request per destination worker carrying all its unique
  // vertices, drained through the request buckets. Each request op only
  // reads the (immutable after Finalize) server storage and writes its own
  // response vector, so requests to different servers are data-race free.
  struct WorkerRequest {
    WorkerId worker = 0;
    const std::vector<VertexId>* vertices = nullptr;
    std::vector<std::span<const Neighbor>> response;
  };
  std::vector<WorkerRequest> requests;
  for (WorkerId w = 0; w < per_worker.size(); ++w) {
    if (per_worker[w].empty()) continue;
    requests.push_back({w, &per_worker[w], {}});
  }

  std::atomic<size_t> pending{requests.size()};
  if (!requests.empty()) {
    BucketExecutor& exec = executor();
    for (WorkerRequest& req : requests) {
      req.response.resize(req.vertices->size());
      auto op = [this, &req, &pending] {
        const GraphServer& srv = *servers_[req.worker];
        for (size_t j = 0; j < req.vertices->size(); ++j) {
          req.response[j] = srv.Neighbors((*req.vertices)[j]);
        }
        pending.fetch_sub(1, std::memory_order_release);
      };
      // Vertex group == destination server id: reads against one server
      // stay sequential in its lane while other servers proceed.
      if (!exec.Submit(req.worker, op)) op();  // budget exhausted: run inline
    }
    SpinBackoff backoff;
    while (pending.load(std::memory_order_acquire) > 0) backoff.Pause();
  }

  // Scatter responses to every slot that asked, and admit fetched data into
  // the reactive cache on the calling thread (caches are not thread-safe).
  for (const WorkerRequest& req : requests) {
    for (size_t j = 0; j < req.vertices->size(); ++j) {
      const VertexId v = (*req.vertices)[j];
      const std::span<const Neighbor> full = req.response[j];
      if (cache != nullptr) cache->OnRemoteFetch(v, full);
      const std::span<const Neighbor> view =
          all_types ? full : servers_[req.worker]->Neighbors(v, type);
      for (const uint32_t slot : remote_slots[v]) out->spans[slot] = view;
    }
  }

  const uint64_t unique_remote = remote_slots.size();
  if (stats != nullptr) {
    stats->local_reads.fetch_add(local_count);
    stats->cache_hits.fetch_add(hit_count);
    stats->remote_reads.fetch_add(unique_remote);
    stats->batched_remote_reads.fetch_add(unique_remote);
    stats->remote_batches.fetch_add(requests.size());
  }
  if (obs_.local_reads != nullptr) {
    obs_.local_reads->Add(local_count);
    obs_.cache_hits->Add(hit_count);
    obs_.remote_reads->Add(unique_remote);
    obs_.batched_remote_reads->Add(unique_remote);
    obs_.remote_batches->Add(requests.size());
  }
}

double Cluster::InstallImportanceCache(int depth,
                                       const std::vector<double>& taus) {
  const ImportanceSelection sel =
      SelectImportantVertices(*graph_, depth, taus);
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(std::make_unique<StaticNeighborCache>(
        "importance", *graph_, sel.vertices));
  }
  return sel.cache_rate;
}

void Cluster::InstallTopImportanceCache(int k, double fraction) {
  const std::vector<VertexId> top = SelectTopImportance(*graph_, k, fraction);
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(
        std::make_unique<StaticNeighborCache>("importance", *graph_, top));
  }
}

void Cluster::InstallRandomCache(double fraction, uint64_t seed) {
  const std::vector<VertexId> pick =
      SelectRandomVertices(*graph_, fraction, seed);
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(
        std::make_unique<StaticNeighborCache>("random", *graph_, pick));
  }
}

void Cluster::InstallLruCache(size_t capacity_vertices) {
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(
        std::make_unique<LruNeighborCache>(capacity_vertices));
  }
}

void Cluster::ClearCaches() {
  for (auto& srv : servers_) srv->set_neighbor_cache(nullptr);
}

double NaiveLockedBuildMillis(const AttributedGraph& graph) {
  Timer timer;
  std::mutex mu;
  std::unordered_map<VertexId, std::vector<Neighbor>> adjacency;
  const VertexId n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      std::lock_guard<std::mutex> lock(mu);  // global synchronization
      adjacency[v].push_back(nb);
    }
  }
  return timer.ElapsedMillis();
}

}  // namespace aligraph
