#include "cluster/cluster.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/importance.h"

namespace aligraph {

namespace {

// Tags keep the request-key spaces of the read paths disjoint, so e.g. a
// neighbor read and an attribute read of the same vertex are judged as
// independent requests by the fault injector.
constexpr uint64_t kNeighborReadTag = 0x6e62'7264ULL;  // "nbrd"
constexpr uint64_t kAttrReadTag = 0x61'7472ULL;        // "atr"
constexpr uint64_t kBatchReadTag = 0x62'6368ULL;       // "bch"
constexpr uint64_t kJitterStreamTag = 0x6a'7472ULL;    // "jtr"

uint64_t PerVertexRequestKey(VertexId v, EdgeType type) {
  return Mix64((static_cast<uint64_t>(v) << 16) ^ type ^
               (kNeighborReadTag << 40));
}

uint64_t AttrRequestKey(VertexId v) {
  return Mix64(static_cast<uint64_t>(v) ^ (kAttrReadTag << 40));
}

/// Content-derived key of one coalesced per-worker request: a fold over
/// the unique vertices it carries. Pure in the request's payload, so two
/// identical runs judge identical requests identically regardless of
/// thread interleaving or call order.
uint64_t BatchRequestKey(const std::vector<VertexId>& vertices) {
  uint64_t key = kBatchReadTag << 40;
  for (const VertexId v : vertices) key = Mix64(key ^ v);
  return key;
}

constexpr uint64_t kAttrBatchTag = 0x61'6263ULL;  // "abc" (attr batch)

uint64_t AttrBatchRequestKey(const std::vector<VertexId>& vertices) {
  uint64_t key = kAttrBatchTag << 40;
  for (const VertexId v : vertices) key = Mix64(key ^ v);
  return key;
}

}  // namespace

std::string ClusterBuildReport::ToString() const {
  std::ostringstream os;
  os << "partition=" << partition_ms << "ms distribute=" << distribute_ms
     << "ms max_worker=" << max_worker_build_ms
     << "ms parallel~=" << simulated_parallel_ms << "ms serial=" << serial_ms
     << "ms " << partition_stats.ToString();
  return os.str();
}

Result<Cluster> Cluster::Build(const AttributedGraph& graph,
                               const Partitioner& partitioner,
                               uint32_t num_workers,
                               ClusterBuildReport* report) {
  if (num_workers == 0) return Status::InvalidArgument("num_workers == 0");
  Cluster cluster;
  cluster.graph_ = &graph;

  Timer total;
  Timer phase;
  ALIGRAPH_ASSIGN_OR_RETURN(cluster.plan_,
                            partitioner.Partition(graph, num_workers));
  const double partition_ms = phase.ElapsedMillis();

  const size_t num_types = graph.num_edge_types();
  cluster.servers_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    cluster.servers_.push_back(
        std::make_unique<GraphServer>(w, num_types));
  }

  // Distribution pass: route every vertex and out-edge to its owner. This
  // is per-source parallelizable; the per-worker share is distribute/p.
  phase.Reset();
  const VertexId n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    GraphServer& srv = *cluster.servers_[cluster.plan_.OwnerOf(v)];
    srv.AddVertex(v, graph.vertex_attr(v));
    for (size_t t = 0; t < num_types; ++t) {
      for (const Neighbor& nb : graph.OutNeighbors(v, static_cast<EdgeType>(t))) {
        srv.AddEdge(v, static_cast<EdgeType>(t), nb);
      }
    }
  }
  const double distribute_ms = phase.ElapsedMillis();

  // Local build per worker, timed individually; the slowest worker defines
  // the simulated parallel critical path.
  double max_worker_ms = 0;
  double sum_worker_ms = 0;
  for (auto& srv : cluster.servers_) {
    Timer worker_timer;
    srv->Finalize();
    const double ms = worker_timer.ElapsedMillis();
    max_worker_ms = std::max(max_worker_ms, ms);
    sum_worker_ms += ms;
  }

  if (report != nullptr) {
    report->partition_ms = partition_ms;
    report->distribute_ms = distribute_ms;
    report->max_worker_build_ms = max_worker_ms;
    report->simulated_parallel_ms =
        partition_ms + distribute_ms / num_workers + max_worker_ms;
    report->serial_ms = partition_ms + distribute_ms + sum_worker_ms;
    report->partition_stats = ComputePartitionStats(graph, cluster.plan_);
  }

  if (obs::MetricsRegistry* reg = obs::Default()) {
    cluster.obs_.local_reads = reg->GetCounter("comm.local_reads");
    cluster.obs_.cache_hits = reg->GetCounter("comm.cache_hits");
    cluster.obs_.remote_reads = reg->GetCounter("comm.remote_reads");
    cluster.obs_.remote_batches = reg->GetCounter("comm.remote_batches");
    cluster.obs_.batched_remote_reads =
        reg->GetCounter("comm.batched_remote_reads");
    cluster.obs_.retry_attempts = reg->GetCounter("retry.attempts");
    cluster.obs_.retry_backoff_us = reg->GetCounter("retry.backoff_us");
    cluster.obs_.failed_reads = reg->GetCounter("comm.failed_reads");
    reg->GetGauge("cluster.workers")->Set(num_workers);
    reg->GetGauge("cluster.vertices")->Set(static_cast<double>(n));
    reg->GetGauge("cluster.edges")
        ->Set(static_cast<double>(graph.num_edges()));
  }
  return cluster;
}

std::span<const Neighbor> Cluster::GetNeighbors(WorkerId from, VertexId v,
                                                CommStats* stats) {
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    return servers_[owner]->Neighbors(v);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  if (cache != nullptr) {
    auto hit = cache->Lookup(v);
    if (hit.has_value()) {
      if (stats != nullptr) stats->cache_hits.fetch_add(1);
      if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
      return *hit;
    }
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  const auto nbs = servers_[owner]->Neighbors(v);
  if (cache != nullptr) cache->OnRemoteFetch(v, nbs);
  return nbs;
}

std::span<const Neighbor> Cluster::GetNeighbors(WorkerId from, VertexId v,
                                                EdgeType type,
                                                CommStats* stats) {
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    return servers_[owner]->Neighbors(v, type);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  if (cache != nullptr && cache->Lookup(v).has_value()) {
    // The pinned copy holds all types; serve the typed view from the owner's
    // layout (same bytes) while charging a cache hit.
    if (stats != nullptr) stats->cache_hits.fetch_add(1);
    if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
    return servers_[owner]->Neighbors(v, type);
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  const auto all = servers_[owner]->Neighbors(v);
  if (cache != nullptr) cache->OnRemoteFetch(v, all);
  return servers_[owner]->Neighbors(v, type);
}

BucketExecutor& Cluster::executor() {
  std::lock_guard<std::mutex> lock(*executor_mu_);
  if (executor_ == nullptr) {
    // One bucket lane per destination server (capped): requests to the same
    // server serialize through its lane, different servers run in parallel.
    const size_t buckets = std::min<size_t>(num_workers(), 8);
    executor_ = std::make_unique<BucketExecutor>(buckets);
  }
  return *executor_;
}

bool Cluster::RemoteRequestSucceeds(WorkerId from, WorkerId to,
                                    uint64_t request_key, CommStats* stats) {
  if (injector_ == nullptr || !injector_->enabled()) return true;
  const RetryPolicy& policy = retry_policy_;
  double charged_us = 0;  // backoff + injected latency, billed to the model
  double elapsed_us = 0;  // modeled request clock, checked vs the deadline
  uint64_t retries = 0;
  bool success = false;

  FaultDecision d = injector_->Decide(from, to, request_key, 1);
  if (stats != nullptr && d.kind != FaultKind::kNone) {
    stats->faults_injected.fetch_add(1);
  }
  charged_us += d.latency_us;
  elapsed_us += d.latency_us;
  if (d.Succeeds() && elapsed_us <= policy.deadline_us) {
    success = true;
  } else {
    // Recovery path: retry with decorrelated-jitter backoff. The jitter
    // stream is seeded per request from (injector seed, request key), so
    // the whole backoff schedule replays exactly for a fixed seed.
    obs::ScopedSpan retry_span("cluster/retry");
    Rng jitter(
        Mix64(injector_->config().seed ^ request_key ^ (kJitterStreamTag << 40)));
    double prev_backoff = policy.base_backoff_us;
    for (uint32_t attempt = 2; attempt <= policy.max_attempts; ++attempt) {
      const double backoff = policy.NextBackoffUs(prev_backoff, jitter);
      prev_backoff = backoff;
      charged_us += backoff;
      elapsed_us += backoff;
      // Past the deadline there is no point sending another message.
      if (elapsed_us > policy.deadline_us) break;
      ++retries;
      // One span per resent message, so a degraded draw's timeline shows
      // each attempt nested under cluster/retry.
      obs::ScopedSpan attempt_span("cluster/retry_attempt");
      d = injector_->Decide(from, to, request_key, attempt);
      if (stats != nullptr && d.kind != FaultKind::kNone) {
        stats->faults_injected.fetch_add(1);
      }
      charged_us += d.latency_us;
      elapsed_us += d.latency_us;
      if (d.Succeeds() && elapsed_us <= policy.deadline_us) {
        success = true;
        break;
      }
    }
  }

  const uint64_t charged = static_cast<uint64_t>(charged_us + 0.5);
  if (stats != nullptr) {
    if (retries > 0) stats->retry_attempts.fetch_add(retries);
    if (charged > 0) stats->retry_backoff_us.fetch_add(charged);
    if (!success) stats->failed_reads.fetch_add(1);
  }
  if (obs_.retry_attempts != nullptr) {
    if (retries > 0) obs_.retry_attempts->Add(retries);
    if (charged > 0) obs_.retry_backoff_us->Add(charged);
    if (!success) obs_.failed_reads->Add(1);
  }
  return success;
}

Result<std::span<const Neighbor>> Cluster::TryGetNeighbors(WorkerId from,
                                                           VertexId v,
                                                           CommStats* stats) {
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    return servers_[owner]->Neighbors(v);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  if (cache != nullptr) {
    auto hit = cache->Lookup(v);
    if (hit.has_value()) {
      if (stats != nullptr) stats->cache_hits.fetch_add(1);
      if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
      return *hit;
    }
  }
  if (!RemoteRequestSucceeds(from, owner, PerVertexRequestKey(v, kAllEdgeTypes),
                             stats)) {
    return Status::Unavailable("neighbors of vertex " + std::to_string(v) +
                               ": worker " + std::to_string(owner) +
                               " did not answer within the retry budget");
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  const auto nbs = servers_[owner]->Neighbors(v);
  if (cache != nullptr) cache->OnRemoteFetch(v, nbs);
  return nbs;
}

Result<std::span<const Neighbor>> Cluster::TryGetNeighbors(WorkerId from,
                                                           VertexId v,
                                                           EdgeType type,
                                                           CommStats* stats) {
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    return servers_[owner]->Neighbors(v, type);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  if (cache != nullptr && cache->Lookup(v).has_value()) {
    if (stats != nullptr) stats->cache_hits.fetch_add(1);
    if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
    return servers_[owner]->Neighbors(v, type);
  }
  if (!RemoteRequestSucceeds(from, owner, PerVertexRequestKey(v, type),
                             stats)) {
    return Status::Unavailable("typed neighbors of vertex " +
                               std::to_string(v) + ": worker " +
                               std::to_string(owner) +
                               " did not answer within the retry budget");
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  const auto all = servers_[owner]->Neighbors(v);
  if (cache != nullptr) cache->OnRemoteFetch(v, all);
  return servers_[owner]->Neighbors(v, type);
}

Result<AttrId> Cluster::TryGetVertexAttr(WorkerId from, VertexId v,
                                         CommStats* stats) {
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    return servers_[owner]->VertexAttr(v);
  }
  if (!RemoteRequestSucceeds(from, owner, AttrRequestKey(v), stats)) {
    return Status::Unavailable("attribute of vertex " + std::to_string(v) +
                               ": worker " + std::to_string(owner) +
                               " did not answer within the retry budget");
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  return servers_[owner]->VertexAttr(v);
}

void Cluster::GetVertexAttrBatch(WorkerId from, std::span<const VertexId> batch,
                                 std::vector<AttrId>* ids, CommStats* stats) {
  // Infallible path: never consults the injector (see GetNeighborsBatch).
  (void)GetVertexAttrBatchImpl(from, batch, ids, nullptr, stats,
                               /*fallible=*/false);
}

Status Cluster::TryGetVertexAttrBatch(WorkerId from,
                                      std::span<const VertexId> batch,
                                      std::vector<AttrId>* ids,
                                      std::vector<uint8_t>* ok,
                                      CommStats* stats) {
  return GetVertexAttrBatchImpl(from, batch, ids, ok, stats,
                                fault_injection_enabled());
}

Status Cluster::GetVertexAttrBatchImpl(WorkerId from,
                                       std::span<const VertexId> batch,
                                       std::vector<AttrId>* ids,
                                       std::vector<uint8_t>* ok,
                                       CommStats* stats, bool fallible) {
  obs::ScopedSpan span("cluster/attr_batch_read");
  ids->assign(batch.size(), kNoAttr);
  if (ok != nullptr) ok->assign(batch.size(), 1);

  // Owned slots resolve immediately; the remote residue is deduplicated and
  // grouped by destination worker (attributes are never neighbor-cached).
  uint64_t local_count = 0;
  std::unordered_map<VertexId, std::vector<uint32_t>> remote_slots;
  std::vector<std::vector<VertexId>> per_worker(servers_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const VertexId v = batch[i];
    const WorkerId owner = plan_.OwnerOf(v);
    if (owner == from) {
      (*ids)[i] = servers_[owner]->VertexAttr(v);
      ++local_count;
      continue;
    }
    auto [it, inserted] = remote_slots.try_emplace(v);
    if (inserted) per_worker[owner].push_back(v);
    it->second.push_back(static_cast<uint32_t>(i));
  }

  // One message (and one fault decision) per destination worker. Responses
  // are scalar AttrIds, so they are served inline — no executor hop.
  size_t failed_slots = 0;
  uint64_t failed_vertices = 0;
  uint64_t contacted_workers = 0;
  for (WorkerId w = 0; w < per_worker.size(); ++w) {
    if (per_worker[w].empty()) continue;
    if (fallible &&
        !RemoteRequestSucceeds(from, w, AttrBatchRequestKey(per_worker[w]),
                               stats)) {
      for (const VertexId v : per_worker[w]) {
        ++failed_vertices;
        for (const uint32_t slot : remote_slots[v]) {
          if (ok != nullptr) (*ok)[slot] = 0;
          ++failed_slots;
        }
      }
      continue;
    }
    ++contacted_workers;
    const GraphServer& srv = *servers_[w];
    for (const VertexId v : per_worker[w]) {
      const AttrId attr = srv.VertexAttr(v);
      for (const uint32_t slot : remote_slots[v]) (*ids)[slot] = attr;
    }
  }

  const uint64_t unique_remote = remote_slots.size() - failed_vertices;
  if (stats != nullptr) {
    stats->local_reads.fetch_add(local_count);
    stats->remote_reads.fetch_add(unique_remote);
    stats->batched_remote_reads.fetch_add(unique_remote);
    stats->remote_batches.fetch_add(contacted_workers);
  }
  if (obs_.local_reads != nullptr) {
    obs_.local_reads->Add(local_count);
    obs_.remote_reads->Add(unique_remote);
    obs_.batched_remote_reads->Add(unique_remote);
    obs_.remote_batches->Add(contacted_workers);
  }
  if (failed_slots == 0) return Status::OK();
  return Status::Unavailable(std::to_string(failed_slots) + " of " +
                             std::to_string(batch.size()) +
                             " attr slots exhausted their retry budget");
}

void Cluster::InstallFaultInjection(FaultConfig config, RetryPolicy policy) {
  retry_policy_ = policy;
  if (retry_policy_.max_attempts == 0) retry_policy_.max_attempts = 1;
  injector_ = std::make_unique<FaultInjector>(std::move(config));
}

void Cluster::ClearFaultInjection() { injector_.reset(); }

void Cluster::GetNeighborsBatch(WorkerId from,
                                std::span<const VertexId> batch,
                                EdgeType type, BatchResult* out,
                                CommStats* stats) {
  // Infallible path: never consults the injector, so installed-but-unused
  // fault configs cannot perturb it. Always OK, hence the discarded Status.
  (void)GetNeighborsBatchImpl(from, batch, type, out, stats,
                              /*fallible=*/false);
}

Status Cluster::TryGetNeighborsBatch(WorkerId from,
                                     std::span<const VertexId> batch,
                                     EdgeType type, BatchResult* out,
                                     CommStats* stats) {
  return GetNeighborsBatchImpl(from, batch, type, out, stats,
                               fault_injection_enabled());
}

Status Cluster::GetNeighborsBatchImpl(WorkerId from,
                                      std::span<const VertexId> batch,
                                      EdgeType type, BatchResult* out,
                                      CommStats* stats, bool fallible) {
  obs::ScopedSpan span("cluster/batch_read");
  const bool all_types = type == kAllEdgeTypes;
  out->Reset(batch.size());
  NeighborCache* cache = servers_[from]->neighbor_cache();

  // Partition the batch: owned and cache-hit slots resolve immediately;
  // the remote residue is deduplicated and grouped by destination worker.
  uint64_t local_count = 0;
  uint64_t hit_count = 0;
  // unique remote vertex -> slots in `batch` that asked for it
  std::unordered_map<VertexId, std::vector<uint32_t>> remote_slots;
  std::vector<std::vector<VertexId>> per_worker(servers_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const VertexId v = batch[i];
    const WorkerId owner = plan_.OwnerOf(v);
    if (owner == from) {
      out->spans[i] = all_types ? servers_[owner]->Neighbors(v)
                                : servers_[owner]->Neighbors(v, type);
      ++local_count;
      continue;
    }
    if (cache != nullptr) {
      auto hit = cache->Lookup(v);
      if (hit.has_value()) {
        // The pinned copy holds all types; the typed view is served from
        // the owner's layout (same bytes) while charging a cache hit.
        out->spans[i] = all_types ? *hit : servers_[owner]->Neighbors(v, type);
        ++hit_count;
        continue;
      }
    }
    auto [it, inserted] = remote_slots.try_emplace(v);
    if (inserted) per_worker[owner].push_back(v);
    it->second.push_back(static_cast<uint32_t>(i));
  }

  // Coalesce: ONE request per destination worker carrying all its unique
  // vertices, drained through the request buckets. Each request op only
  // reads the (immutable after Finalize) server storage and writes its own
  // response vector, so requests to different servers are data-race free.
  struct WorkerRequest {
    WorkerId worker = 0;
    const std::vector<VertexId>* vertices = nullptr;
    std::vector<std::span<const Neighbor>> response;
  };
  std::vector<WorkerRequest> requests;
  size_t failed_slots = 0;
  uint64_t failed_vertices = 0;
  for (WorkerId w = 0; w < per_worker.size(); ++w) {
    if (per_worker[w].empty()) continue;
    // One fault decision per coalesced message — the message is the failure
    // domain, so all slots of a failed per-worker request fail together.
    // Judged on the calling thread, keeping retry accounting deterministic.
    if (fallible &&
        !RemoteRequestSucceeds(from, w, BatchRequestKey(per_worker[w]),
                               stats)) {
      for (const VertexId v : per_worker[w]) {
        ++failed_vertices;
        for (const uint32_t slot : remote_slots[v]) {
          out->ok[slot] = 0;
          ++failed_slots;
        }
      }
      continue;
    }
    requests.push_back({w, &per_worker[w], {}});
  }

  std::atomic<size_t> pending{requests.size()};
  if (!requests.empty()) {
    BucketExecutor& exec = executor();
    for (WorkerRequest& req : requests) {
      req.response.resize(req.vertices->size());
      auto op = [this, &req, &pending] {
        {
          // Recorded on the consumer thread; parents under
          // cluster/batch_read via the context the executor adopted at
          // submission. Scoped so the record is published before `pending`
          // drops — callers reading Events() right after the batch returns
          // are guaranteed to see it.
          obs::ScopedSpan serve_span("cluster/remote_serve");
          const GraphServer& srv = *servers_[req.worker];
          for (size_t j = 0; j < req.vertices->size(); ++j) {
            req.response[j] = srv.Neighbors((*req.vertices)[j]);
          }
        }
        pending.fetch_sub(1, std::memory_order_release);
      };
      // Vertex group == destination server id: reads against one server
      // stay sequential in its lane while other servers proceed.
      // ResourceExhausted (local backpressure, not a worker fault) falls
      // back to running the op inline on the calling thread.
      if (!exec.TrySubmit(req.worker, op).ok()) op();
    }
    SpinBackoff backoff;
    while (pending.load(std::memory_order_acquire) > 0) backoff.Pause();
  }

  // Scatter responses to every slot that asked, and admit fetched data into
  // the reactive cache on the calling thread (caches are not thread-safe).
  for (const WorkerRequest& req : requests) {
    for (size_t j = 0; j < req.vertices->size(); ++j) {
      const VertexId v = (*req.vertices)[j];
      const std::span<const Neighbor> full = req.response[j];
      if (cache != nullptr) cache->OnRemoteFetch(v, full);
      const std::span<const Neighbor> view =
          all_types ? full : servers_[req.worker]->Neighbors(v, type);
      for (const uint32_t slot : remote_slots[v]) out->spans[slot] = view;
    }
  }

  // Only admitted requests moved bytes: failed vertices are excluded from
  // the payload counters (their cost lives in retry_* / failed_reads).
  const uint64_t unique_remote = remote_slots.size() - failed_vertices;
  if (stats != nullptr) {
    stats->local_reads.fetch_add(local_count);
    stats->cache_hits.fetch_add(hit_count);
    stats->remote_reads.fetch_add(unique_remote);
    stats->batched_remote_reads.fetch_add(unique_remote);
    stats->remote_batches.fetch_add(requests.size());
  }
  if (obs_.local_reads != nullptr) {
    obs_.local_reads->Add(local_count);
    obs_.cache_hits->Add(hit_count);
    obs_.remote_reads->Add(unique_remote);
    obs_.batched_remote_reads->Add(unique_remote);
    obs_.remote_batches->Add(requests.size());
  }
  if (failed_slots == 0) return Status::OK();
  return Status::Unavailable(std::to_string(failed_slots) + " of " +
                             std::to_string(batch.size()) +
                             " batch slots exhausted their retry budget");
}

double Cluster::InstallImportanceCache(int depth,
                                       const std::vector<double>& taus) {
  const ImportanceSelection sel =
      SelectImportantVertices(*graph_, depth, taus);
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(std::make_unique<StaticNeighborCache>(
        "importance", *graph_, sel.vertices));
  }
  return sel.cache_rate;
}

void Cluster::InstallTopImportanceCache(int k, double fraction) {
  const std::vector<VertexId> top = SelectTopImportance(*graph_, k, fraction);
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(
        std::make_unique<StaticNeighborCache>("importance", *graph_, top));
  }
}

void Cluster::InstallRandomCache(double fraction, uint64_t seed) {
  const std::vector<VertexId> pick =
      SelectRandomVertices(*graph_, fraction, seed);
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(
        std::make_unique<StaticNeighborCache>("random", *graph_, pick));
  }
}

void Cluster::InstallLruCache(size_t capacity_vertices) {
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(
        std::make_unique<LruNeighborCache>(capacity_vertices));
  }
}

void Cluster::ClearCaches() {
  for (auto& srv : servers_) srv->set_neighbor_cache(nullptr);
}

double NaiveLockedBuildMillis(const AttributedGraph& graph) {
  Timer timer;
  std::mutex mu;
  std::unordered_map<VertexId, std::vector<Neighbor>> adjacency;
  const VertexId n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      std::lock_guard<std::mutex> lock(mu);  // global synchronization
      adjacency[v].push_back(nb);
    }
  }
  return timer.ElapsedMillis();
}

}  // namespace aligraph
