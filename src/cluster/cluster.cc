#include "cluster/cluster.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/importance.h"

namespace aligraph {

namespace {

// Tags keep the request-key spaces of the read paths disjoint, so e.g. a
// neighbor read and an attribute read of the same vertex are judged as
// independent requests by the fault injector.
constexpr uint64_t kNeighborReadTag = 0x6e62'7264ULL;  // "nbrd"
constexpr uint64_t kAttrReadTag = 0x61'7472ULL;        // "atr"
constexpr uint64_t kBatchReadTag = 0x62'6368ULL;       // "bch"
constexpr uint64_t kJitterStreamTag = 0x6a'7472ULL;    // "jtr"

uint64_t PerVertexRequestKey(VertexId v, EdgeType type) {
  return Mix64((static_cast<uint64_t>(v) << 16) ^ type ^
               (kNeighborReadTag << 40));
}

uint64_t AttrRequestKey(VertexId v) {
  return Mix64(static_cast<uint64_t>(v) ^ (kAttrReadTag << 40));
}

/// Content-derived key of one coalesced per-worker request: a fold over
/// the unique vertices it carries. Pure in the request's payload, so two
/// identical runs judge identical requests identically regardless of
/// thread interleaving or call order.
uint64_t BatchRequestKey(const std::vector<VertexId>& vertices) {
  uint64_t key = kBatchReadTag << 40;
  for (const VertexId v : vertices) key = Mix64(key ^ v);
  return key;
}

constexpr uint64_t kAttrBatchTag = 0x61'6263ULL;  // "abc" (attr batch)

uint64_t AttrBatchRequestKey(const std::vector<VertexId>& vertices) {
  uint64_t key = kAttrBatchTag << 40;
  for (const VertexId v : vertices) key = Mix64(key ^ v);
  return key;
}

}  // namespace

std::string ClusterBuildReport::ToString() const {
  std::ostringstream os;
  os << "partition=" << partition_ms << "ms distribute=" << distribute_ms
     << "ms max_worker=" << max_worker_build_ms
     << "ms parallel~=" << simulated_parallel_ms << "ms serial=" << serial_ms
     << "ms " << partition_stats.ToString();
  return os.str();
}

Result<Cluster> Cluster::Build(const AttributedGraph& graph,
                               const Partitioner& partitioner,
                               uint32_t num_workers,
                               ClusterBuildReport* report) {
  if (num_workers == 0) return Status::InvalidArgument("num_workers == 0");
  Cluster cluster;
  cluster.graph_ = &graph;

  Timer total;
  Timer phase;
  ALIGRAPH_ASSIGN_OR_RETURN(cluster.plan_,
                            partitioner.Partition(graph, num_workers));
  const double partition_ms = phase.ElapsedMillis();

  const size_t num_types = graph.num_edge_types();
  cluster.servers_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    cluster.servers_.push_back(
        std::make_unique<GraphServer>(w, num_types));
  }

  // Distribution pass: route every vertex and out-edge to its owner, and a
  // full copy to each replica worker (identical edge order, so replica
  // layouts are byte-identical to the primary's). This is per-source
  // parallelizable; the per-worker share is distribute/p.
  phase.Reset();
  const VertexId n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    GraphServer& srv = *cluster.servers_[cluster.plan_.OwnerOf(v)];
    srv.AddVertex(v, graph.vertex_attr(v));
    const std::span<const WorkerId> copies = cluster.plan_.ReplicasOf(v);
    for (const WorkerId r : copies) {
      cluster.servers_[r]->AddReplicaVertex(v, graph.vertex_attr(v));
    }
    for (size_t t = 0; t < num_types; ++t) {
      for (const Neighbor& nb : graph.OutNeighbors(v, static_cast<EdgeType>(t))) {
        srv.AddEdge(v, static_cast<EdgeType>(t), nb);
        for (const WorkerId r : copies) {
          cluster.servers_[r]->AddReplicaEdge(v, static_cast<EdgeType>(t), nb);
        }
      }
    }
  }
  const double distribute_ms = phase.ElapsedMillis();

  cluster.served_reads_.reset(new std::atomic<uint64_t>[num_workers]);
  for (uint32_t w = 0; w < num_workers; ++w) {
    cluster.served_reads_[w].store(0, std::memory_order_relaxed);
  }

  // Local build per worker, timed individually; the slowest worker defines
  // the simulated parallel critical path.
  double max_worker_ms = 0;
  double sum_worker_ms = 0;
  for (auto& srv : cluster.servers_) {
    Timer worker_timer;
    srv->Finalize();
    const double ms = worker_timer.ElapsedMillis();
    max_worker_ms = std::max(max_worker_ms, ms);
    sum_worker_ms += ms;
  }

  if (report != nullptr) {
    report->partition_ms = partition_ms;
    report->distribute_ms = distribute_ms;
    report->max_worker_build_ms = max_worker_ms;
    report->simulated_parallel_ms =
        partition_ms + distribute_ms / num_workers + max_worker_ms;
    report->serial_ms = partition_ms + distribute_ms + sum_worker_ms;
    report->partition_stats = ComputePartitionStats(graph, cluster.plan_);
  }

  if (obs::MetricsRegistry* reg = obs::Default()) {
    cluster.obs_.local_reads = reg->GetCounter("comm.local_reads");
    cluster.obs_.replica_reads = reg->GetCounter("comm.replica_reads");
    cluster.obs_.cache_hits = reg->GetCounter("comm.cache_hits");
    cluster.obs_.remote_reads = reg->GetCounter("comm.remote_reads");
    cluster.obs_.remote_batches = reg->GetCounter("comm.remote_batches");
    cluster.obs_.batched_remote_reads =
        reg->GetCounter("comm.batched_remote_reads");
    cluster.obs_.retry_attempts = reg->GetCounter("retry.attempts");
    cluster.obs_.retry_backoff_us = reg->GetCounter("retry.backoff_us");
    cluster.obs_.failed_reads = reg->GetCounter("comm.failed_reads");
    reg->GetGauge("cluster.workers")->Set(num_workers);
    reg->GetGauge("cluster.vertices")->Set(static_cast<double>(n));
    reg->GetGauge("cluster.edges")
        ->Set(static_cast<double>(graph.num_edges()));
  }
  return cluster;
}

std::span<const Neighbor> Cluster::GetNeighbors(WorkerId from, VertexId v,
                                                CommStats* stats,
                                                uint64_t epoch) {
  const uint64_t e = ResolveEpoch(epoch);
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    CountServed(from);
    return servers_[owner]->NeighborsAt(v, e);
  }
  if (plan_.HasReplicas() && servers_[from]->HasReplica(v)) {
    if (stats != nullptr) stats->replica_reads.fetch_add(1);
    if (obs_.replica_reads != nullptr) obs_.replica_reads->Add(1);
    CountServed(from);
    return servers_[from]->NeighborsAt(v, e);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  const bool dirty = BypassCache(cache, v, e);
  if (cache != nullptr && !dirty) {
    auto hit = cache->Lookup(v);
    if (hit.has_value()) {
      if (stats != nullptr) stats->cache_hits.fetch_add(1);
      if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
      CountServed(from);
      return *hit;
    }
  }
  const WorkerId target = plan_.ServingWorker(v, from);
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  CountServed(target);
  const auto nbs = servers_[target]->NeighborsAt(v, e);
  if (cache != nullptr && !dirty) cache->OnRemoteFetch(v, nbs);
  return nbs;
}

std::span<const Neighbor> Cluster::GetNeighbors(WorkerId from, VertexId v,
                                                EdgeType type,
                                                CommStats* stats,
                                                uint64_t epoch) {
  const uint64_t e = ResolveEpoch(epoch);
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    CountServed(from);
    return servers_[owner]->NeighborsAt(v, type, e);
  }
  if (plan_.HasReplicas() && servers_[from]->HasReplica(v)) {
    if (stats != nullptr) stats->replica_reads.fetch_add(1);
    if (obs_.replica_reads != nullptr) obs_.replica_reads->Add(1);
    CountServed(from);
    return servers_[from]->NeighborsAt(v, type, e);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  const bool dirty = BypassCache(cache, v, e);
  if (cache != nullptr && !dirty && cache->Lookup(v).has_value()) {
    // The pinned copy holds all types; serve the typed view from the owner's
    // layout (same bytes) while charging a cache hit.
    if (stats != nullptr) stats->cache_hits.fetch_add(1);
    if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
    CountServed(from);
    return servers_[owner]->NeighborsAt(v, type, e);
  }
  const WorkerId target = plan_.ServingWorker(v, from);
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  CountServed(target);
  const auto all = servers_[target]->NeighborsAt(v, e);
  if (cache != nullptr && !dirty) cache->OnRemoteFetch(v, all);
  return servers_[target]->NeighborsAt(v, type, e);
}

BucketExecutor& Cluster::executor() {
  std::lock_guard<std::mutex> lock(*executor_mu_);
  if (executor_ == nullptr) {
    // One bucket lane per destination server (capped): requests to the same
    // server serialize through its lane, different servers run in parallel.
    const size_t buckets = std::min<size_t>(num_workers(), 8);
    executor_ = std::make_unique<BucketExecutor>(buckets);
  }
  return *executor_;
}

bool Cluster::RemoteRequestSucceeds(WorkerId from, WorkerId to,
                                    uint64_t request_key, CommStats* stats) {
  if (injector_ == nullptr || !injector_->enabled()) return true;
  const RetryPolicy& policy = retry_policy_;
  double charged_us = 0;  // backoff + injected latency, billed to the model
  double elapsed_us = 0;  // modeled request clock, checked vs the deadline
  uint64_t retries = 0;
  bool success = false;

  FaultDecision d = injector_->Decide(from, to, request_key, 1);
  if (stats != nullptr && d.kind != FaultKind::kNone) {
    stats->faults_injected.fetch_add(1);
  }
  charged_us += d.latency_us;
  elapsed_us += d.latency_us;
  if (d.Succeeds() && elapsed_us <= policy.deadline_us) {
    success = true;
  } else {
    // Recovery path: retry with decorrelated-jitter backoff. The jitter
    // stream is seeded per request from (injector seed, request key), so
    // the whole backoff schedule replays exactly for a fixed seed.
    obs::ScopedSpan retry_span("cluster/retry");
    Rng jitter(
        Mix64(injector_->config().seed ^ request_key ^ (kJitterStreamTag << 40)));
    double prev_backoff = policy.base_backoff_us;
    for (uint32_t attempt = 2; attempt <= policy.max_attempts; ++attempt) {
      const double backoff = policy.NextBackoffUs(prev_backoff, jitter);
      prev_backoff = backoff;
      charged_us += backoff;
      elapsed_us += backoff;
      // Past the deadline there is no point sending another message.
      if (elapsed_us > policy.deadline_us) break;
      ++retries;
      // One span per resent message, so a degraded draw's timeline shows
      // each attempt nested under cluster/retry.
      obs::ScopedSpan attempt_span("cluster/retry_attempt");
      d = injector_->Decide(from, to, request_key, attempt);
      if (stats != nullptr && d.kind != FaultKind::kNone) {
        stats->faults_injected.fetch_add(1);
      }
      charged_us += d.latency_us;
      elapsed_us += d.latency_us;
      if (d.Succeeds() && elapsed_us <= policy.deadline_us) {
        success = true;
        break;
      }
    }
  }

  const uint64_t charged = static_cast<uint64_t>(charged_us + 0.5);
  if (stats != nullptr) {
    if (retries > 0) stats->retry_attempts.fetch_add(retries);
    if (charged > 0) stats->retry_backoff_us.fetch_add(charged);
    if (!success) stats->failed_reads.fetch_add(1);
  }
  if (obs_.retry_attempts != nullptr) {
    if (retries > 0) obs_.retry_attempts->Add(retries);
    if (charged > 0) obs_.retry_backoff_us->Add(charged);
    if (!success) obs_.failed_reads->Add(1);
  }
  return success;
}

Result<std::span<const Neighbor>> Cluster::TryGetNeighbors(WorkerId from,
                                                           VertexId v,
                                                           CommStats* stats,
                                                           uint64_t epoch) {
  const uint64_t e = ResolveEpoch(epoch);
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    CountServed(from);
    return servers_[owner]->NeighborsAt(v, e);
  }
  if (plan_.HasReplicas() && servers_[from]->HasReplica(v)) {
    if (stats != nullptr) stats->replica_reads.fetch_add(1);
    if (obs_.replica_reads != nullptr) obs_.replica_reads->Add(1);
    CountServed(from);
    return servers_[from]->NeighborsAt(v, e);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  const bool dirty = BypassCache(cache, v, e);
  if (cache != nullptr && !dirty) {
    auto hit = cache->Lookup(v);
    if (hit.has_value()) {
      if (stats != nullptr) stats->cache_hits.fetch_add(1);
      if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
      CountServed(from);
      return *hit;
    }
  }
  const WorkerId target = plan_.ServingWorker(v, from);
  if (!RemoteRequestSucceeds(from, target,
                             PerVertexRequestKey(v, kAllEdgeTypes), stats)) {
    return Status::Unavailable("neighbors of vertex " + std::to_string(v) +
                               ": worker " + std::to_string(target) +
                               " did not answer within the retry budget");
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  CountServed(target);
  const auto nbs = servers_[target]->NeighborsAt(v, e);
  if (cache != nullptr && !dirty) cache->OnRemoteFetch(v, nbs);
  return nbs;
}

Result<std::span<const Neighbor>> Cluster::TryGetNeighbors(WorkerId from,
                                                           VertexId v,
                                                           EdgeType type,
                                                           CommStats* stats,
                                                           uint64_t epoch) {
  const uint64_t e = ResolveEpoch(epoch);
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    CountServed(from);
    return servers_[owner]->NeighborsAt(v, type, e);
  }
  if (plan_.HasReplicas() && servers_[from]->HasReplica(v)) {
    if (stats != nullptr) stats->replica_reads.fetch_add(1);
    if (obs_.replica_reads != nullptr) obs_.replica_reads->Add(1);
    CountServed(from);
    return servers_[from]->NeighborsAt(v, type, e);
  }
  NeighborCache* cache = servers_[from]->neighbor_cache();
  const bool dirty = BypassCache(cache, v, e);
  if (cache != nullptr && !dirty && cache->Lookup(v).has_value()) {
    if (stats != nullptr) stats->cache_hits.fetch_add(1);
    if (obs_.cache_hits != nullptr) obs_.cache_hits->Add(1);
    CountServed(from);
    return servers_[owner]->NeighborsAt(v, type, e);
  }
  const WorkerId target = plan_.ServingWorker(v, from);
  if (!RemoteRequestSucceeds(from, target, PerVertexRequestKey(v, type),
                             stats)) {
    return Status::Unavailable("typed neighbors of vertex " +
                               std::to_string(v) + ": worker " +
                               std::to_string(target) +
                               " did not answer within the retry budget");
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  CountServed(target);
  const auto all = servers_[target]->NeighborsAt(v, e);
  if (cache != nullptr && !dirty) cache->OnRemoteFetch(v, all);
  return servers_[target]->NeighborsAt(v, type, e);
}

Result<AttrId> Cluster::TryGetVertexAttr(WorkerId from, VertexId v,
                                         CommStats* stats) {
  const WorkerId owner = plan_.OwnerOf(v);
  if (owner == from) {
    if (stats != nullptr) stats->local_reads.fetch_add(1);
    if (obs_.local_reads != nullptr) obs_.local_reads->Add(1);
    CountServed(from);
    return servers_[owner]->VertexAttr(v);
  }
  // Attributes are immutable, so a replica copy is always current.
  if (plan_.HasReplicas() && servers_[from]->HasReplica(v)) {
    if (stats != nullptr) stats->replica_reads.fetch_add(1);
    if (obs_.replica_reads != nullptr) obs_.replica_reads->Add(1);
    CountServed(from);
    return servers_[from]->VertexAttr(v);
  }
  if (!RemoteRequestSucceeds(from, owner, AttrRequestKey(v), stats)) {
    return Status::Unavailable("attribute of vertex " + std::to_string(v) +
                               ": worker " + std::to_string(owner) +
                               " did not answer within the retry budget");
  }
  if (stats != nullptr) stats->remote_reads.fetch_add(1);
  if (obs_.remote_reads != nullptr) obs_.remote_reads->Add(1);
  CountServed(owner);
  return servers_[owner]->VertexAttr(v);
}

void Cluster::GetVertexAttrBatch(WorkerId from, std::span<const VertexId> batch,
                                 std::vector<AttrId>* ids, CommStats* stats) {
  // Infallible path: never consults the injector (see GetNeighborsBatch).
  (void)GetVertexAttrBatchImpl(from, batch, ids, nullptr, stats,
                               /*fallible=*/false);
}

Status Cluster::TryGetVertexAttrBatch(WorkerId from,
                                      std::span<const VertexId> batch,
                                      std::vector<AttrId>* ids,
                                      std::vector<uint8_t>* ok,
                                      CommStats* stats) {
  return GetVertexAttrBatchImpl(from, batch, ids, ok, stats,
                                fault_injection_enabled());
}

Status Cluster::GetVertexAttrBatchImpl(WorkerId from,
                                       std::span<const VertexId> batch,
                                       std::vector<AttrId>* ids,
                                       std::vector<uint8_t>* ok,
                                       CommStats* stats, bool fallible) {
  obs::ScopedSpan span("cluster/attr_batch_read");
  ids->assign(batch.size(), kNoAttr);
  if (ok != nullptr) ok->assign(batch.size(), 1);

  // Owned slots resolve immediately; the remote residue is deduplicated and
  // grouped by destination worker (attributes are never neighbor-cached).
  uint64_t local_count = 0;
  uint64_t replica_count = 0;
  std::unordered_map<VertexId, std::vector<uint32_t>> remote_slots;
  std::vector<std::vector<VertexId>> per_worker(servers_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const VertexId v = batch[i];
    const WorkerId owner = plan_.OwnerOf(v);
    if (owner == from) {
      (*ids)[i] = servers_[owner]->VertexAttr(v);
      ++local_count;
      continue;
    }
    // Attributes are immutable, so a replica copy is always current.
    if (plan_.HasReplicas() && servers_[from]->HasReplica(v)) {
      (*ids)[i] = servers_[from]->VertexAttr(v);
      ++replica_count;
      continue;
    }
    auto [it, inserted] = remote_slots.try_emplace(v);
    if (inserted) per_worker[owner].push_back(v);
    it->second.push_back(static_cast<uint32_t>(i));
  }

  // One message (and one fault decision) per destination worker. Responses
  // are scalar AttrIds, so they are served inline — no executor hop.
  size_t failed_slots = 0;
  uint64_t failed_vertices = 0;
  uint64_t contacted_workers = 0;
  for (WorkerId w = 0; w < per_worker.size(); ++w) {
    if (per_worker[w].empty()) continue;
    if (fallible &&
        !RemoteRequestSucceeds(from, w, AttrBatchRequestKey(per_worker[w]),
                               stats)) {
      for (const VertexId v : per_worker[w]) {
        ++failed_vertices;
        for (const uint32_t slot : remote_slots[v]) {
          if (ok != nullptr) (*ok)[slot] = 0;
          ++failed_slots;
        }
      }
      continue;
    }
    ++contacted_workers;
    CountServed(w, per_worker[w].size());
    const GraphServer& srv = *servers_[w];
    for (const VertexId v : per_worker[w]) {
      const AttrId attr = srv.VertexAttr(v);
      for (const uint32_t slot : remote_slots[v]) (*ids)[slot] = attr;
    }
  }

  const uint64_t unique_remote = remote_slots.size() - failed_vertices;
  CountServed(from, local_count + replica_count);
  if (stats != nullptr) {
    stats->local_reads.fetch_add(local_count);
    stats->replica_reads.fetch_add(replica_count);
    stats->remote_reads.fetch_add(unique_remote);
    stats->batched_remote_reads.fetch_add(unique_remote);
    stats->remote_batches.fetch_add(contacted_workers);
  }
  if (obs_.local_reads != nullptr) {
    obs_.local_reads->Add(local_count);
    obs_.replica_reads->Add(replica_count);
    obs_.remote_reads->Add(unique_remote);
    obs_.batched_remote_reads->Add(unique_remote);
    obs_.remote_batches->Add(contacted_workers);
  }
  if (failed_slots == 0) return Status::OK();
  return Status::Unavailable(std::to_string(failed_slots) + " of " +
                             std::to_string(batch.size()) +
                             " attr slots exhausted their retry budget");
}

void Cluster::InstallFaultInjection(FaultConfig config, RetryPolicy policy) {
  retry_policy_ = policy;
  if (retry_policy_.max_attempts == 0) retry_policy_.max_attempts = 1;
  injector_ = std::make_unique<FaultInjector>(std::move(config));
}

void Cluster::ClearFaultInjection() { injector_.reset(); }

std::shared_ptr<const Cluster::DirtyMap> Cluster::dirty_snapshot() const {
  std::lock_guard<std::mutex> lock(*dirty_mu_);
  return dirty_;
}

bool Cluster::BypassCache(NeighborCache* cache, VertexId v, uint64_t e) {
  if (cache == nullptr || !epochs_->versioned()) return false;
  const auto dirty = dirty_snapshot();
  if (dirty == nullptr) return false;
  auto it = dirty->find(v);
  if (it == dirty->end() || it->second > e) return false;
  cache->Invalidate(v);
  return true;
}

std::vector<uint64_t> Cluster::ServedReadsSnapshot() const {
  std::vector<uint64_t> out(num_workers());
  for (uint32_t w = 0; w < out.size(); ++w) {
    out[w] = served_reads_[w].load(std::memory_order_relaxed);
  }
  return out;
}

void Cluster::ResetServedReads() {
  for (uint32_t w = 0; w < num_workers(); ++w) {
    served_reads_[w].store(0, std::memory_order_relaxed);
  }
}

Status Cluster::ApplyUpdateBatch(std::span<const EdgeUpdate> updates,
                                 UpdateReport* report) {
  std::lock_guard<std::mutex> lock(*update_mu_);
  obs::ScopedSpan span("cluster/apply_updates");
  const VertexId n = graph_->num_vertices();
  const size_t num_types = graph_->num_edge_types();
  const uint64_t new_epoch = epochs_->current() + 1;

  // Group the batch by source vertex, preserving per-source order.
  std::unordered_map<VertexId, std::vector<const EdgeUpdate*>> by_src;
  std::vector<VertexId> sources;
  size_t applied = 0;
  size_t skipped = 0;
  for (const EdgeUpdate& u : updates) {
    if (u.src >= n || u.type >= num_types ||
        (u.kind == EdgeUpdate::Kind::kInsert && u.dst >= n)) {
      ++skipped;
      continue;
    }
    auto [it, inserted] = by_src.try_emplace(u.src);
    if (inserted) sources.push_back(u.src);
    it->second.push_back(&u);
  }

  // Rebuild each touched vertex's full typed adjacency from the latest
  // published state and stamp ONE immutable version at the new epoch. The
  // same version object is shared by the primary and every replica, which
  // is what makes all copies flip together when the epoch advances.
  std::vector<std::pair<VertexId, AdjVersionPtr>> versions;
  versions.reserve(sources.size());
  for (const VertexId v : sources) {
    const GraphServer& osrv = *servers_[plan_.OwnerOf(v)];
    std::vector<std::vector<Neighbor>> typed(num_types);
    for (size_t t = 0; t < num_types; ++t) {
      const auto s = osrv.NeighborsAt(v, static_cast<EdgeType>(t),
                                      kEpochCurrent);
      typed[t].assign(s.begin(), s.end());
    }
    bool changed = false;
    for (const EdgeUpdate* u : by_src[v]) {
      std::vector<Neighbor>& list = typed[u->type];
      if (u->kind == EdgeUpdate::Kind::kInsert) {
        list.push_back(Neighbor{u->dst, u->weight, u->attr});
        ++applied;
        changed = true;
      } else {
        auto match = std::find_if(
            list.begin(), list.end(),
            [u](const Neighbor& nb) { return nb.dst == u->dst; });
        if (match == list.end()) {
          ++skipped;
        } else {
          list.erase(match);
          ++applied;
          changed = true;
        }
      }
    }
    if (!changed) continue;
    auto ver = std::make_shared<AdjVersion>();
    ver->epoch = new_epoch;
    ver->type_offsets.resize(num_types + 1, 0);
    size_t total = 0;
    for (size_t t = 0; t < num_types; ++t) {
      ver->type_offsets[t] = static_cast<uint32_t>(total);
      total += typed[t].size();
    }
    ver->type_offsets[num_types] = static_cast<uint32_t>(total);
    ver->neighbors.reserve(total);
    for (size_t t = 0; t < num_types; ++t) {
      ver->neighbors.insert(ver->neighbors.end(), typed[t].begin(),
                            typed[t].end());
    }
    versions.emplace_back(v, std::move(ver));
  }

  if (versions.empty()) {
    // Nothing changed: do not burn an epoch (a never-updated cluster stays
    // on the epoch-0 fast path).
    if (report != nullptr) {
      report->epoch = epochs_->current();
      report->applied = applied;
      report->skipped = skipped;
      report->versions_pruned = 0;
    }
    return Status::OK();
  }

  // Copy-on-write republish of every touched server's delta table,
  // reclaiming versions no pinned reader can still reach: the newest
  // version at or below the min-active epoch shadows everything older.
  const uint64_t min_active = epochs_->MinActiveEpoch();
  size_t pruned = 0;
  std::unordered_map<WorkerId, std::vector<std::pair<VertexId, AdjVersionPtr>>>
      per_server;
  for (const auto& [v, ver] : versions) {
    per_server[plan_.OwnerOf(v)].emplace_back(v, ver);
    for (const WorkerId r : plan_.ReplicasOf(v)) {
      per_server[r].emplace_back(v, ver);
    }
  }
  for (auto& [w, items] : per_server) {
    const auto old_table = servers_[w]->delta_snapshot();
    auto table = old_table != nullptr ? std::make_shared<DeltaTable>(*old_table)
                                      : std::make_shared<DeltaTable>();
    for (const auto& [v, ver] : items) {
      std::vector<AdjVersionPtr>& chain = (*table)[v];
      chain.push_back(ver);
      size_t newest_le = chain.size();
      for (size_t i = 0; i < chain.size(); ++i) {
        if (chain[i]->epoch <= min_active) newest_le = i;
      }
      if (newest_le != chain.size() && newest_le > 0) {
        pruned += newest_le;
        chain.erase(chain.begin(),
                    chain.begin() + static_cast<ptrdiff_t>(newest_le));
      }
    }
    servers_[w]->PublishDelta(std::move(table));
  }

  // Publish the dirty map (vertex -> first-update epoch, kept at the
  // earliest), THEN advance: a reader that sees the new epoch is guaranteed
  // to also see every table and the dirty entries of this batch.
  {
    std::lock_guard<std::mutex> dirty_lock(*dirty_mu_);
    auto next = dirty_ != nullptr ? std::make_shared<DirtyMap>(*dirty_)
                                  : std::make_shared<DirtyMap>();
    for (const auto& [v, ver] : versions) next->try_emplace(v, new_epoch);
    dirty_ = std::move(next);
  }
  const uint64_t published = epochs_->Advance();

  if (obs::MetricsRegistry* reg = obs::Default()) {
    reg->GetCounter("update.batches")->Add(1);
    reg->GetCounter("update.edges_applied")->Add(applied);
    reg->GetCounter("update.skipped")->Add(skipped);
    reg->GetCounter("update.versions_pruned")->Add(pruned);
    reg->GetGauge("update.epoch")->Set(static_cast<double>(published));
  }
  if (report != nullptr) {
    report->epoch = published;
    report->applied = applied;
    report->skipped = skipped;
    report->versions_pruned = pruned;
  }
  return Status::OK();
}

void Cluster::GetNeighborsBatch(WorkerId from,
                                std::span<const VertexId> batch,
                                EdgeType type, BatchResult* out,
                                CommStats* stats, uint64_t epoch) {
  // Infallible path: never consults the injector, so installed-but-unused
  // fault configs cannot perturb it. Always OK, hence the discarded Status.
  (void)GetNeighborsBatchImpl(from, batch, type, out, stats,
                              /*fallible=*/false, epoch);
}

Status Cluster::TryGetNeighborsBatch(WorkerId from,
                                     std::span<const VertexId> batch,
                                     EdgeType type, BatchResult* out,
                                     CommStats* stats, uint64_t epoch) {
  return GetNeighborsBatchImpl(from, batch, type, out, stats,
                               fault_injection_enabled(), epoch);
}

Status Cluster::GetNeighborsBatchImpl(WorkerId from,
                                      std::span<const VertexId> batch,
                                      EdgeType type, BatchResult* out,
                                      CommStats* stats, bool fallible,
                                      uint64_t epoch) {
  obs::ScopedSpan span("cluster/batch_read");
  const bool all_types = type == kAllEdgeTypes;
  // Resolved once, so the whole batch reads one epoch even unpinned.
  const uint64_t e = ResolveEpoch(epoch);
  out->Reset(batch.size());
  NeighborCache* cache = servers_[from]->neighbor_cache();
  const bool has_replicas = plan_.HasReplicas();

  // Partition the batch: owned, replica-held and cache-hit slots resolve
  // immediately; the remote residue is deduplicated and grouped by its
  // serving worker (the owner when unreplicated, a hash-spread copy holder
  // otherwise).
  uint64_t local_count = 0;
  uint64_t replica_count = 0;
  uint64_t hit_count = 0;
  // unique remote vertex -> slots in `batch` that asked for it
  std::unordered_map<VertexId, std::vector<uint32_t>> remote_slots;
  std::vector<std::vector<VertexId>> per_worker(servers_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const VertexId v = batch[i];
    const WorkerId owner = plan_.OwnerOf(v);
    if (owner == from) {
      out->spans[i] = all_types ? servers_[owner]->NeighborsAt(v, e)
                                : servers_[owner]->NeighborsAt(v, type, e);
      ++local_count;
      continue;
    }
    if (has_replicas && servers_[from]->HasReplica(v)) {
      out->spans[i] = all_types ? servers_[from]->NeighborsAt(v, e)
                                : servers_[from]->NeighborsAt(v, type, e);
      ++replica_count;
      continue;
    }
    const bool dirty = BypassCache(cache, v, e);
    if (cache != nullptr && !dirty) {
      auto hit = cache->Lookup(v);
      if (hit.has_value()) {
        // The pinned copy holds all types; the typed view is served from
        // the owner's layout (same bytes) while charging a cache hit.
        out->spans[i] =
            all_types ? *hit : servers_[owner]->NeighborsAt(v, type, e);
        ++hit_count;
        continue;
      }
    }
    auto [it, inserted] = remote_slots.try_emplace(v);
    if (inserted) per_worker[plan_.ServingWorker(v, from)].push_back(v);
    it->second.push_back(static_cast<uint32_t>(i));
  }

  // Coalesce: ONE request per destination worker carrying all its unique
  // vertices, drained through the request buckets. Each request op only
  // reads the (immutable after Finalize) server storage and writes its own
  // response vector, so requests to different servers are data-race free.
  struct WorkerRequest {
    WorkerId worker = 0;
    const std::vector<VertexId>* vertices = nullptr;
    std::vector<std::span<const Neighbor>> response;
  };
  std::vector<WorkerRequest> requests;
  size_t failed_slots = 0;
  uint64_t failed_vertices = 0;
  for (WorkerId w = 0; w < per_worker.size(); ++w) {
    if (per_worker[w].empty()) continue;
    // One fault decision per coalesced message — the message is the failure
    // domain, so all slots of a failed per-worker request fail together.
    // Judged on the calling thread, keeping retry accounting deterministic.
    if (fallible &&
        !RemoteRequestSucceeds(from, w, BatchRequestKey(per_worker[w]),
                               stats)) {
      for (const VertexId v : per_worker[w]) {
        ++failed_vertices;
        for (const uint32_t slot : remote_slots[v]) {
          out->ok[slot] = 0;
          ++failed_slots;
        }
      }
      continue;
    }
    requests.push_back({w, &per_worker[w], {}});
  }

  std::atomic<size_t> pending{requests.size()};
  if (!requests.empty()) {
    BucketExecutor& exec = executor();
    for (WorkerRequest& req : requests) {
      req.response.resize(req.vertices->size());
      auto op = [this, &req, &pending, e] {
        {
          // Recorded on the consumer thread; parents under
          // cluster/batch_read via the context the executor adopted at
          // submission. Scoped so the record is published before `pending`
          // drops — callers reading Events() right after the batch returns
          // are guaranteed to see it.
          obs::ScopedSpan serve_span("cluster/remote_serve");
          const GraphServer& srv = *servers_[req.worker];
          for (size_t j = 0; j < req.vertices->size(); ++j) {
            req.response[j] = srv.NeighborsAt((*req.vertices)[j], e);
          }
        }
        pending.fetch_sub(1, std::memory_order_release);
      };
      // Vertex group == destination server id: reads against one server
      // stay sequential in its lane while other servers proceed.
      // ResourceExhausted (local backpressure, not a worker fault) falls
      // back to running the op inline on the calling thread.
      if (!exec.TrySubmit(req.worker, op).ok()) op();
    }
    SpinBackoff backoff;
    while (pending.load(std::memory_order_acquire) > 0) backoff.Pause();
  }

  // Scatter responses to every slot that asked, and admit fetched data into
  // the reactive cache on the calling thread (caches are not thread-safe).
  for (const WorkerRequest& req : requests) {
    CountServed(req.worker, req.vertices->size());
    for (size_t j = 0; j < req.vertices->size(); ++j) {
      const VertexId v = (*req.vertices)[j];
      const std::span<const Neighbor> full = req.response[j];
      // Updated vertices are never admitted: the cache may only ever hold
      // pre-update data, which is what makes the dirty-bypass rule exact.
      if (cache != nullptr && !BypassCache(cache, v, e)) {
        cache->OnRemoteFetch(v, full);
      }
      const std::span<const Neighbor> view =
          all_types ? full : servers_[req.worker]->NeighborsAt(v, type, e);
      for (const uint32_t slot : remote_slots[v]) out->spans[slot] = view;
    }
  }

  // Only admitted requests moved bytes: failed vertices are excluded from
  // the payload counters (their cost lives in retry_* / failed_reads).
  const uint64_t unique_remote = remote_slots.size() - failed_vertices;
  if (stats != nullptr) {
    stats->local_reads.fetch_add(local_count);
    stats->cache_hits.fetch_add(hit_count);
    stats->remote_reads.fetch_add(unique_remote);
    stats->batched_remote_reads.fetch_add(unique_remote);
    stats->remote_batches.fetch_add(requests.size());
  }
  if (obs_.local_reads != nullptr) {
    obs_.local_reads->Add(local_count);
    obs_.cache_hits->Add(hit_count);
    obs_.remote_reads->Add(unique_remote);
    obs_.batched_remote_reads->Add(unique_remote);
    obs_.remote_batches->Add(requests.size());
  }
  if (failed_slots == 0) return Status::OK();
  return Status::Unavailable(std::to_string(failed_slots) + " of " +
                             std::to_string(batch.size()) +
                             " batch slots exhausted their retry budget");
}

double Cluster::InstallImportanceCache(int depth,
                                       const std::vector<double>& taus) {
  const ImportanceSelection sel =
      SelectImportantVertices(*graph_, depth, taus);
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(std::make_unique<StaticNeighborCache>(
        "importance", *graph_, sel.vertices));
  }
  return sel.cache_rate;
}

void Cluster::InstallTopImportanceCache(int k, double fraction) {
  const std::vector<VertexId> top = SelectTopImportance(*graph_, k, fraction);
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(
        std::make_unique<StaticNeighborCache>("importance", *graph_, top));
  }
}

void Cluster::InstallRandomCache(double fraction, uint64_t seed) {
  const std::vector<VertexId> pick =
      SelectRandomVertices(*graph_, fraction, seed);
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(
        std::make_unique<StaticNeighborCache>("random", *graph_, pick));
  }
}

void Cluster::InstallLruCache(size_t capacity_vertices) {
  for (auto& srv : servers_) {
    srv->set_neighbor_cache(
        std::make_unique<LruNeighborCache>(capacity_vertices));
  }
}

void Cluster::ClearCaches() {
  for (auto& srv : servers_) srv->set_neighbor_cache(nullptr);
}

double NaiveLockedBuildMillis(const AttributedGraph& graph) {
  Timer timer;
  std::mutex mu;
  std::unordered_map<VertexId, std::vector<Neighbor>> adjacency;
  const VertexId n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      std::lock_guard<std::mutex> lock(mu);  // global synchronization
      adjacency[v].push_back(nb);
    }
  }
  return timer.ElapsedMillis();
}

}  // namespace aligraph
