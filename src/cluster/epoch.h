/// \file epoch.h
/// \brief Epoch versioning for online graph updates: a global monotone epoch
/// counter, RAII reader pins, and the min-active-epoch computation that
/// drives reclamation of retired adjacency versions.
///
/// Contract (see DESIGN.md §15): writers stage a whole update batch at epoch
/// E+1 across every touched server (primary and replicas), then advance the
/// global counter once — so the batch becomes visible to all workers
/// atomically. Readers pin the current epoch for the duration of a
/// multi-read scope (a whole k-hop) and resolve every adjacency read as "the
/// newest version with epoch <= pinned", which is what makes a k-hop unable
/// to observe a mix of two epochs. Versions that no pinned reader can reach
/// any more (superseded by a newer version at or below the minimum active
/// epoch) are pruned the next time a writer rebuilds a server's delta table.

#ifndef ALIGRAPH_CLUSTER_EPOCH_H_
#define ALIGRAPH_CLUSTER_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace aligraph {

/// Sentinel epoch meaning "resolve against the current global epoch at call
/// time". Read paths default to it; pinned readers pass their pin's epoch.
inline constexpr uint64_t kEpochCurrent = ~uint64_t{0};

class EpochManager;

/// \brief RAII registration of one reader at one epoch. Movable, not
/// copyable; a default-constructed pin is inert (epoch 0, nothing to
/// release) — the form non-versioned sources hand out.
class EpochPin {
 public:
  EpochPin() = default;
  EpochPin(EpochPin&& other) noexcept
      : manager_(other.manager_), slot_(other.slot_), epoch_(other.epoch_) {
    other.manager_ = nullptr;
  }
  EpochPin& operator=(EpochPin&& other) noexcept {
    if (this != &other) {
      Release();
      manager_ = other.manager_;
      slot_ = other.slot_;
      epoch_ = other.epoch_;
      other.manager_ = nullptr;
    }
    return *this;
  }
  ~EpochPin() { Release(); }

  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

  /// The epoch every read in this pin's scope resolves against.
  uint64_t epoch() const { return epoch_; }
  bool pinned() const { return manager_ != nullptr; }

  /// Releases the registration early (idempotent).
  void Release();

 private:
  friend class EpochManager;
  EpochPin(EpochManager* manager, uint32_t slot, uint64_t epoch)
      : manager_(manager), slot_(slot), epoch_(epoch) {}

  EpochManager* manager_ = nullptr;
  uint32_t slot_ = 0;
  uint64_t epoch_ = 0;
};

/// \brief Global epoch counter plus a fixed slot table of pinned readers.
///
/// All operations are lock-free; pin registration uses the classic
/// epoch-reclamation handshake (store the observed epoch, re-read, repeat
/// until stable) so a pin is either visible to the writer's min-active scan
/// or already holds the post-advance epoch. When every slot is taken,
/// Acquire degrades to an unpinned EpochPin carrying the current epoch —
/// still consistent for the reader (its reads resolve one epoch), merely
/// invisible to reclamation, which then simply retains more versions.
class EpochManager {
 public:
  static constexpr uint32_t kMaxPins = 64;

  EpochManager() {
    for (auto& s : slots_) s.store(kIdle, std::memory_order_relaxed);
  }

  /// Current global epoch. 0 until the first update batch is published.
  uint64_t current() const { return current_.load(std::memory_order_acquire); }

  /// Cheap hot-path probe: has any update batch ever been published?
  bool versioned() const {
    return current_.load(std::memory_order_relaxed) != 0;
  }

  /// Writer side: makes all state staged at epoch current()+1 visible.
  /// Returns the new epoch. Callers must serialize Advance externally (the
  /// cluster's update mutex does).
  uint64_t Advance() {
    return current_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Reader side: registers this reader at the current epoch.
  EpochPin Acquire() {
    for (uint32_t i = 0; i < kMaxPins; ++i) {
      uint64_t expected = kIdle;
      // Reserve the slot with the current epoch, then re-read the counter:
      // if a writer advanced in between, republish the newer epoch until
      // the two agree. Writers scan slots before advancing, so a stable
      // published epoch is always <= every later min-active computation.
      uint64_t e = current_.load(std::memory_order_seq_cst);
      if (!slots_[i].compare_exchange_strong(expected, e,
                                             std::memory_order_seq_cst)) {
        continue;
      }
      for (;;) {
        const uint64_t e2 = current_.load(std::memory_order_seq_cst);
        if (e2 == e) break;
        e = e2;
        slots_[i].store(e, std::memory_order_seq_cst);
      }
      return EpochPin(this, i, e);
    }
    // Slot table full: unpinned fallback (consistent reads, no reclamation
    // guarantee — the writer keeps versions conservatively).
    EpochPin pin;
    pin.epoch_ = current();
    return pin;
  }

  /// Oldest epoch any pinned reader may still resolve against; current()
  /// when nobody is pinned. Writers prune versions superseded at or below
  /// this value.
  uint64_t MinActiveEpoch() const {
    uint64_t min_epoch = current_.load(std::memory_order_seq_cst);
    for (const auto& s : slots_) {
      const uint64_t e = s.load(std::memory_order_seq_cst);
      if (e != kIdle && e < min_epoch) min_epoch = e;
    }
    return min_epoch;
  }

  /// Number of currently registered pins (diagnostics / tests).
  uint32_t active_pins() const {
    uint32_t n = 0;
    for (const auto& s : slots_) {
      if (s.load(std::memory_order_relaxed) != kIdle) ++n;
    }
    return n;
  }

 private:
  friend class EpochPin;
  static constexpr uint64_t kIdle = ~uint64_t{0};

  void ReleaseSlot(uint32_t slot) {
    slots_[slot].store(kIdle, std::memory_order_seq_cst);
  }

  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> slots_[kMaxPins];
};

inline void EpochPin::Release() {
  if (manager_ != nullptr) {
    manager_->ReleaseSlot(slot_);
    manager_ = nullptr;
  }
}

}  // namespace aligraph

#endif  // ALIGRAPH_CLUSTER_EPOCH_H_
