#include "cluster/graph_server.h"

#include <algorithm>

#include "common/logging.h"

namespace aligraph {

void GraphServer::AddVertex(VertexId v, AttrId attr) {
  ALIGRAPH_CHECK(!finalized_);
  auto [it, inserted] = adj_.try_emplace(v);
  if (inserted) owned_.push_back(v);
  it->second.attr = attr;
}

void GraphServer::AddEdge(VertexId src, EdgeType type,
                          const Neighbor& neighbor) {
  ALIGRAPH_CHECK(!finalized_);
  if (adj_.find(src) == adj_.end()) AddVertex(src, kNoAttr);
  staging_[src].emplace_back(type, neighbor);
  ++num_edges_;
}

void GraphServer::AddReplicaVertex(VertexId v, AttrId attr) {
  ALIGRAPH_CHECK(!finalized_);
  replica_adj_.try_emplace(v).first->second.attr = attr;
}

void GraphServer::AddReplicaEdge(VertexId src, EdgeType type,
                                 const Neighbor& neighbor) {
  ALIGRAPH_CHECK(!finalized_);
  replica_adj_.try_emplace(src);
  replica_staging_[src].emplace_back(type, neighbor);
}

void GraphServer::CompactInto(Staging& staging,
                              std::unordered_map<VertexId, Adj>& out) {
  for (auto& [v, edges] : staging) {
    // Counting sort by type keeps Finalize O(m) per server.
    Adj& a = out[v];
    a.type_offsets.assign(num_edge_types_ + 1, 0);
    for (const auto& [t, nb] : edges) ++a.type_offsets[t + 1];
    for (size_t t = 1; t <= num_edge_types_; ++t) {
      a.type_offsets[t] += a.type_offsets[t - 1];
    }
    a.neighbors.resize(edges.size());
    std::vector<uint32_t> cursor(a.type_offsets.begin(),
                                 a.type_offsets.end() - 1);
    for (const auto& [t, nb] : edges) a.neighbors[cursor[t]++] = nb;
  }
  staging.clear();
}

void GraphServer::Finalize() {
  ALIGRAPH_CHECK(!finalized_);
  finalized_ = true;
  CompactInto(staging_, adj_);
  CompactInto(replica_staging_, replica_adj_);
}

const GraphServer::Adj* GraphServer::FindBase(VertexId v) const {
  auto it = adj_.find(v);
  if (it != adj_.end()) return &it->second;
  auto rit = replica_adj_.find(v);
  if (rit != replica_adj_.end()) return &rit->second;
  return nullptr;
}

const AdjVersion* GraphServer::ResolveVersion(VertexId v,
                                              uint64_t epoch) const {
  if (!has_delta_.load(std::memory_order_relaxed)) return nullptr;
  std::shared_ptr<const DeltaTable> table;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    table = delta_;
  }
  if (table == nullptr) return nullptr;
  auto it = table->find(v);
  if (it == table->end()) return nullptr;
  // Chains are short (one entry per surviving epoch of this vertex) and
  // ascending: scan backwards for the newest version at or below epoch.
  const std::vector<AdjVersionPtr>& chain = it->second;
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    if ((*rit)->epoch <= epoch) return rit->get();
  }
  return nullptr;
}

std::span<const Neighbor> GraphServer::NeighborsAt(VertexId v,
                                                   uint64_t epoch) const {
  ALIGRAPH_CHECK(finalized_);
  if (const AdjVersion* ver = ResolveVersion(v, epoch)) {
    return ver->neighbors;
  }
  const Adj* a = FindBase(v);
  if (a == nullptr) return {};
  return a->neighbors;
}

std::span<const Neighbor> GraphServer::NeighborsAt(VertexId v, EdgeType type,
                                                   uint64_t epoch) const {
  ALIGRAPH_CHECK(finalized_);
  if (const AdjVersion* ver = ResolveVersion(v, epoch)) {
    if (ver->type_offsets.empty()) return {};
    return {ver->neighbors.data() + ver->type_offsets[type],
            static_cast<size_t>(ver->type_offsets[type + 1] -
                                ver->type_offsets[type])};
  }
  const Adj* a = FindBase(v);
  if (a == nullptr || a->type_offsets.empty()) return {};
  return {a->neighbors.data() + a->type_offsets[type],
          static_cast<size_t>(a->type_offsets[type + 1] -
                              a->type_offsets[type])};
}

AttrId GraphServer::VertexAttr(VertexId v) const {
  const Adj* a = FindBase(v);
  return a == nullptr ? kNoAttr : a->attr;
}

std::shared_ptr<const DeltaTable> GraphServer::delta_snapshot() const {
  if (!has_delta_.load(std::memory_order_relaxed)) return nullptr;
  std::lock_guard<std::mutex> lock(delta_mu_);
  return delta_;
}

void GraphServer::PublishDelta(std::shared_ptr<const DeltaTable> table) {
  std::lock_guard<std::mutex> lock(delta_mu_);
  delta_ = std::move(table);
  has_delta_.store(delta_ != nullptr, std::memory_order_relaxed);
}

size_t GraphServer::MemoryBytes() const {
  size_t bytes = 0;
  auto add = [&bytes](const std::unordered_map<VertexId, Adj>& m) {
    for (const auto& [v, a] : m) {
      bytes += a.neighbors.size() * sizeof(Neighbor) +
               a.type_offsets.size() * sizeof(uint32_t) + sizeof(VertexId) +
               sizeof(AttrId);
    }
  };
  add(adj_);
  add(replica_adj_);
  if (auto table = delta_snapshot()) {
    for (const auto& [v, chain] : *table) {
      bytes += sizeof(VertexId);
      for (const AdjVersionPtr& ver : chain) {
        bytes += ver->neighbors.size() * sizeof(Neighbor) +
                 ver->type_offsets.size() * sizeof(uint32_t) +
                 sizeof(AdjVersion);
      }
    }
  }
  return bytes;
}

}  // namespace aligraph
