#include "cluster/graph_server.h"

#include <algorithm>

#include "common/logging.h"

namespace aligraph {

void GraphServer::AddVertex(VertexId v, AttrId attr) {
  ALIGRAPH_CHECK(!finalized_);
  auto [it, inserted] = adj_.try_emplace(v);
  if (inserted) owned_.push_back(v);
  it->second.attr = attr;
}

void GraphServer::AddEdge(VertexId src, EdgeType type,
                          const Neighbor& neighbor) {
  ALIGRAPH_CHECK(!finalized_);
  if (adj_.find(src) == adj_.end()) AddVertex(src, kNoAttr);
  staging_[src].emplace_back(type, neighbor);
  ++num_edges_;
}

void GraphServer::Finalize() {
  ALIGRAPH_CHECK(!finalized_);
  finalized_ = true;
  for (auto& [v, edges] : staging_) {
    // Counting sort by type keeps Finalize O(m) per server.
    Adj& a = adj_[v];
    a.type_offsets.assign(num_edge_types_ + 1, 0);
    for (const auto& [t, nb] : edges) ++a.type_offsets[t + 1];
    for (size_t t = 1; t <= num_edge_types_; ++t) {
      a.type_offsets[t] += a.type_offsets[t - 1];
    }
    a.neighbors.resize(edges.size());
    std::vector<uint32_t> cursor(a.type_offsets.begin(),
                                 a.type_offsets.end() - 1);
    for (const auto& [t, nb] : edges) a.neighbors[cursor[t]++] = nb;
  }
  staging_.clear();
}

std::span<const Neighbor> GraphServer::Neighbors(VertexId v) const {
  ALIGRAPH_CHECK(finalized_);
  auto it = adj_.find(v);
  if (it == adj_.end()) return {};
  return it->second.neighbors;
}

std::span<const Neighbor> GraphServer::Neighbors(VertexId v,
                                                 EdgeType type) const {
  ALIGRAPH_CHECK(finalized_);
  auto it = adj_.find(v);
  if (it == adj_.end() || it->second.type_offsets.empty()) return {};
  const Adj& a = it->second;
  return {a.neighbors.data() + a.type_offsets[type],
          static_cast<size_t>(a.type_offsets[type + 1] -
                              a.type_offsets[type])};
}

AttrId GraphServer::VertexAttr(VertexId v) const {
  auto it = adj_.find(v);
  return it == adj_.end() ? kNoAttr : it->second.attr;
}

size_t GraphServer::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [v, a] : adj_) {
    bytes += a.neighbors.size() * sizeof(Neighbor) +
             a.type_offsets.size() * sizeof(uint32_t) + sizeof(VertexId) +
             sizeof(AttrId);
  }
  return bytes;
}

}  // namespace aligraph
