/// \file request_bucket.h
/// \brief Lock-free request-flow buckets (Section 3.3, Figure 6).
///
/// Each graph server splits its vertices into groups; all reads and updates
/// touching a group flow through that group's bucket — a bounded lock-free
/// MPSC ring bound to one logical core — and are processed sequentially by
/// a single consumer, eliminating per-operation locking.

#ifndef ALIGRAPH_CLUSTER_REQUEST_BUCKET_H_
#define ALIGRAPH_CLUSTER_REQUEST_BUCKET_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "graph/types.h"

namespace aligraph {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

/// \brief Bounded multi-producer / single-consumer ring buffer.
///
/// Producers claim slots with a fetch-add ticket and publish via a sequence
/// stamp (Vyukov MPMC scheme restricted to one consumer). Push spins briefly
/// and fails when the ring stays full, letting callers apply backpressure.
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(size_t capacity_pow2 = 1024)
      : capacity_(capacity_pow2), mask_(capacity_pow2 - 1),
        cells_(capacity_pow2) {
    ALIGRAPH_CHECK((capacity_pow2 & (capacity_pow2 - 1)) == 0)
        << "capacity must be a power of two";
    for (size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  /// Attempts to enqueue; returns false when the ring is full.
  bool TryPush(T value) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer dequeue; returns false when empty.
  bool TryPop(T* out) {
    Cell& cell = cells_[head_ & mask_];
    const size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(head_ + 1) < 0) {
      return false;  // empty
    }
    *out = std::move(cell.value);
    cell.seq.store(head_ + capacity_, std::memory_order_release);
    ++head_;
    return true;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value;
  };

  const size_t capacity_;
  const size_t mask_;
  std::vector<Cell> cells_;
  std::atomic<size_t> tail_{0};
  size_t head_ = 0;  // single consumer: plain field
};

/// \brief Exponential backoff for spin loops: yields for the first few
/// rounds, then sleeps for geometrically growing (capped) intervals so a
/// stalled waiter stops burning its core.
class SpinBackoff {
 public:
  /// Returns true when this pause escalated past yielding into a sleep, so
  /// callers can count how often backpressure actually stalled them.
  bool Pause();
  void Reset() { rounds_ = 0; }
  uint32_t rounds() const { return rounds_; }

 private:
  static constexpr uint32_t kYieldRounds = 32;
  static constexpr uint32_t kMaxSleepUs = 256;
  uint32_t rounds_ = 0;
};

/// \brief A set of request buckets, each drained by its own thread.
///
/// Operations are closures routed by vertex group: group g always lands in
/// bucket g % num_buckets, so operations on the same group execute
/// sequentially without locks while different groups proceed in parallel.
class BucketExecutor {
 public:
  using Op = std::function<void()>;

  /// \param submit_spin_limit backoff rounds Submit attempts on a full ring
  ///        before giving up and reporting the op as dropped.
  explicit BucketExecutor(size_t num_buckets, size_t ring_capacity = 4096,
                          uint32_t submit_spin_limit = 1u << 16);
  ~BucketExecutor();

  BucketExecutor(const BucketExecutor&) = delete;
  BucketExecutor& operator=(const BucketExecutor&) = delete;

  /// Enqueues an operation for a vertex group, backing off exponentially
  /// while the ring is full. Returns OK when enqueued; ResourceExhausted
  /// when the spin budget is exhausted — the op was NOT enqueued (counted
  /// in dropped_after_spin()) and the caller must run or retry it itself.
  /// The Status code lets retry layers distinguish this local backpressure
  /// from a failed remote worker (Unavailable).
  [[nodiscard]] Status TrySubmit(uint64_t group, Op op);

  /// Bool-returning convenience wrapper over TrySubmit (true == enqueued).
  [[nodiscard]] bool Submit(uint64_t group, Op op) {
    return TrySubmit(group, std::move(op)).ok();
  }

  /// Blocks until every submitted operation has executed.
  void Drain();

  size_t num_buckets() const { return buckets_.size(); }

  /// Ops rejected by Submit after exhausting the backoff budget.
  uint64_t dropped_after_spin() const {
    return dropped_after_spin_.load(std::memory_order_relaxed);
  }

  /// Submit-side backoff pauses that escalated into an actual sleep (the
  /// ring stayed full past the yield rounds) — the backpressure signal.
  uint64_t submit_backoff_sleeps() const {
    return submit_backoff_sleeps_.load(std::memory_order_relaxed);
  }

  /// Ops enqueued but not yet executed, summed across every bucket.
  uint64_t queue_depth() const {
    const uint64_t done = completed_.load(std::memory_order_relaxed);
    const uint64_t sub = submitted_.load(std::memory_order_relaxed);
    return sub > done ? sub - done : 0;
  }

 private:
  struct Bucket {
    explicit Bucket(size_t cap) : ring(cap) {}
    MpscRing<Op> ring;
    std::thread consumer;
  };

  void ConsumerLoop(Bucket* bucket);

  std::vector<std::unique_ptr<Bucket>> buckets_;
  const uint32_t submit_spin_limit_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> dropped_after_spin_{0};
  std::atomic<uint64_t> submit_backoff_sleeps_{0};
  std::atomic<bool> stop_{false};
  // Registry handles resolved at construction from the default metrics
  // registry (null when observability is detached).
  obs::Counter* obs_dropped_ = nullptr;
  obs::Counter* obs_sleeps_ = nullptr;
  obs::Gauge* obs_depth_ = nullptr;
};

}  // namespace aligraph

#endif  // ALIGRAPH_CLUSTER_REQUEST_BUCKET_H_
