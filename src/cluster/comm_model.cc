#include "cluster/comm_model.h"

#include <sstream>

namespace aligraph {

std::string CommStats::Snapshot::ToString() const {
  std::ostringstream os;
  os << "local=" << local_reads << " cache=" << cache_hits
     << " remote=" << remote_reads << " remote_batches=" << remote_batches
     << " batched_remote=" << batched_remote_reads;
  return os.str();
}

std::string CommStats::ToString() const { return snapshot().ToString(); }

}  // namespace aligraph
