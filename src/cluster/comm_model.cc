#include "cluster/comm_model.h"

#include <sstream>

#include "obs/metrics.h"

namespace aligraph {

void CommStats::Snapshot::ExportTo(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  registry.GetCounter(prefix + ".local_reads")->Add(local_reads);
  registry.GetCounter(prefix + ".replica_reads")->Add(replica_reads);
  registry.GetCounter(prefix + ".cache_hits")->Add(cache_hits);
  registry.GetCounter(prefix + ".remote_reads")->Add(remote_reads);
  registry.GetCounter(prefix + ".remote_batches")->Add(remote_batches);
  registry.GetCounter(prefix + ".batched_remote_reads")
      ->Add(batched_remote_reads);
  registry.GetCounter(prefix + ".faults_injected")->Add(faults_injected);
  registry.GetCounter(prefix + ".retry_attempts")->Add(retry_attempts);
  registry.GetCounter(prefix + ".retry_backoff_us")->Add(retry_backoff_us);
  registry.GetCounter(prefix + ".failed_reads")->Add(failed_reads);
}

std::string CommStats::Snapshot::ToString() const {
  std::ostringstream os;
  os << "local=" << local_reads << " cache=" << cache_hits
     << " remote=" << remote_reads << " remote_batches=" << remote_batches
     << " batched_remote=" << batched_remote_reads;
  if (replica_reads != 0) os << " replica=" << replica_reads;
  if (faults_injected != 0 || retry_attempts != 0 || failed_reads != 0) {
    os << " faults=" << faults_injected << " retries=" << retry_attempts
       << " backoff_us=" << retry_backoff_us << " failed=" << failed_reads;
  }
  return os.str();
}

std::string CommStats::ToString() const { return snapshot().ToString(); }

}  // namespace aligraph
