#include "cluster/comm_model.h"

#include <sstream>

namespace aligraph {

std::string CommStats::ToString() const {
  std::ostringstream os;
  os << "local=" << local_reads.load() << " cache=" << cache_hits.load()
     << " remote=" << remote_reads.load();
  return os.str();
}

}  // namespace aligraph
