#include "cluster/comm_model.h"

#include <sstream>

#include "obs/metrics.h"

namespace aligraph {

void CommStats::Snapshot::ExportTo(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  registry.GetCounter(prefix + ".local_reads")->Add(local_reads);
  registry.GetCounter(prefix + ".cache_hits")->Add(cache_hits);
  registry.GetCounter(prefix + ".remote_reads")->Add(remote_reads);
  registry.GetCounter(prefix + ".remote_batches")->Add(remote_batches);
  registry.GetCounter(prefix + ".batched_remote_reads")
      ->Add(batched_remote_reads);
}

std::string CommStats::Snapshot::ToString() const {
  std::ostringstream os;
  os << "local=" << local_reads << " cache=" << cache_hits
     << " remote=" << remote_reads << " remote_batches=" << remote_batches
     << " batched_remote=" << batched_remote_reads;
  return os.str();
}

std::string CommStats::ToString() const { return snapshot().ToString(); }

}  // namespace aligraph
