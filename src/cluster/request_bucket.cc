#include "cluster/request_bucket.h"

#include <memory>

namespace aligraph {

BucketExecutor::BucketExecutor(size_t num_buckets, size_t ring_capacity) {
  ALIGRAPH_CHECK_GT(num_buckets, 0u);
  buckets_.reserve(num_buckets);
  for (size_t i = 0; i < num_buckets; ++i) {
    buckets_.push_back(std::make_unique<Bucket>(ring_capacity));
  }
  for (auto& b : buckets_) {
    b->consumer = std::thread([this, bp = b.get()] { ConsumerLoop(bp); });
  }
}

BucketExecutor::~BucketExecutor() {
  Drain();
  stop_.store(true, std::memory_order_release);
  for (auto& b : buckets_) b->consumer.join();
}

void BucketExecutor::Submit(uint64_t group, Op op) {
  Bucket& bucket = *buckets_[group % buckets_.size()];
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // Pass a copy per attempt: a failed TryPush leaves its argument
  // moved-from, so retrying with the original would drop the op.
  while (!bucket.ring.TryPush(op)) {
    std::this_thread::yield();  // backpressure: ring full
  }
}

void BucketExecutor::Drain() {
  while (completed_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void BucketExecutor::ConsumerLoop(Bucket* bucket) {
  Op op;
  while (true) {
    if (bucket->ring.TryPop(&op)) {
      op();
      completed_.fetch_add(1, std::memory_order_release);
    } else if (stop_.load(std::memory_order_acquire)) {
      return;
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace aligraph
