#include "cluster/request_bucket.h"

#include <chrono>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aligraph {

bool SpinBackoff::Pause() {
  ++rounds_;
  if (rounds_ <= kYieldRounds) {
    std::this_thread::yield();
    return false;
  }
  // Escalate: 1, 2, 4, ... microseconds, capped so a long stall still polls
  // a few thousand times per second.
  const uint32_t exp = rounds_ - kYieldRounds;
  const uint32_t us = exp >= 8 ? kMaxSleepUs
                               : std::min<uint32_t>(kMaxSleepUs, 1u << exp);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
  return true;
}

BucketExecutor::BucketExecutor(size_t num_buckets, size_t ring_capacity,
                               uint32_t submit_spin_limit)
    : submit_spin_limit_(submit_spin_limit),
      obs_dropped_(obs::DefaultCounter("bucket.dropped_after_spin")),
      obs_sleeps_(obs::DefaultCounter("bucket.submit_backoff_sleeps")),
      obs_depth_(obs::DefaultGauge("bucket.queue_depth")) {
  ALIGRAPH_CHECK_GT(num_buckets, 0u);
  buckets_.reserve(num_buckets);
  for (size_t i = 0; i < num_buckets; ++i) {
    buckets_.push_back(std::make_unique<Bucket>(ring_capacity));
  }
  for (auto& b : buckets_) {
    b->consumer = std::thread([this, bp = b.get()] { ConsumerLoop(bp); });
  }
}

BucketExecutor::~BucketExecutor() {
  Drain();
  stop_.store(true, std::memory_order_release);
  for (auto& b : buckets_) b->consumer.join();
}

Status BucketExecutor::TrySubmit(uint64_t group, Op op) {
  // Cross-thread causal handoff: the consumer thread adopts the submitter's
  // trace context, so spans inside the op parent under the submitting span
  // instead of losing parentage at the ring boundary.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.trace_id != 0) {
    op = [ctx, inner = std::move(op)] {
      obs::ScopedTraceContext adopt(ctx);
      inner();
    };
  }
  const size_t index = group % buckets_.size();
  Bucket& bucket = *buckets_[index];
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // Pass a copy per attempt: a failed TryPush leaves its argument
  // moved-from, so retrying with the original would drop the op.
  SpinBackoff backoff;
  while (!bucket.ring.TryPush(op)) {
    if (backoff.rounds() >= submit_spin_limit_) {
      // Ring stayed full through the whole backoff budget: hand the op back
      // instead of spinning forever.
      submitted_.fetch_sub(1, std::memory_order_relaxed);
      dropped_after_spin_.fetch_add(1, std::memory_order_relaxed);
      if (obs_dropped_ != nullptr) obs_dropped_->Add(1);
      return Status::ResourceExhausted(
          "request bucket " + std::to_string(index) +
          " stayed full through the submit backoff budget");
    }
    if (backoff.Pause()) {
      submit_backoff_sleeps_.fetch_add(1, std::memory_order_relaxed);
      if (obs_sleeps_ != nullptr) obs_sleeps_->Add(1);
    }
  }
  // Approximate under concurrency (last write wins), which is fine for a
  // gauge: what matters is whether the depth trends toward the ring bound.
  if (obs_depth_ != nullptr) {
    obs_depth_->Set(static_cast<double>(queue_depth()));
  }
  return Status::OK();
}

void BucketExecutor::Drain() {
  SpinBackoff backoff;
  while (completed_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void BucketExecutor::ConsumerLoop(Bucket* bucket) {
  Op op;
  SpinBackoff backoff;
  while (true) {
    if (bucket->ring.TryPop(&op)) {
      op();
      completed_.fetch_add(1, std::memory_order_release);
      if (obs_depth_ != nullptr) {
        obs_depth_->Set(static_cast<double>(queue_depth()));
      }
      backoff.Reset();
    } else if (stop_.load(std::memory_order_acquire)) {
      return;
    } else {
      backoff.Pause();
    }
  }
}

}  // namespace aligraph
