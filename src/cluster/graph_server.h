/// \file graph_server.h
/// \brief One worker of the simulated cluster: owns a source-partitioned
/// subgraph stored as per-vertex, type-segmented adjacency lists plus an
/// optional neighbor cache and an LRU attribute cache (the paper's IV/IE
/// front caches).

#ifndef ALIGRAPH_CLUSTER_GRAPH_SERVER_H_
#define ALIGRAPH_CLUSTER_GRAPH_SERVER_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "graph/graph.h"
#include "storage/neighbor_cache.h"

namespace aligraph {

/// \brief Per-server local storage of the vertices it owns.
///
/// Adjacency for each owned vertex is one contiguous vector segmented by
/// edge type, so both "all neighbors" and "neighbors of type t" are O(1)
/// span views. Construction: AddEdge calls followed by one Finalize.
class GraphServer {
 public:
  GraphServer(WorkerId id, size_t num_edge_types)
      : id_(id), num_edge_types_(num_edge_types) {}

  WorkerId id() const { return id_; }

  /// Registers ownership of a vertex (may hold zero edges).
  void AddVertex(VertexId v, AttrId attr);

  /// Buffers one out-edge of an owned vertex.
  void AddEdge(VertexId src, EdgeType type, const Neighbor& neighbor);

  /// Compacts buffered edges into type-segmented adjacency. Must be called
  /// exactly once, after which AddEdge is illegal.
  void Finalize();

  bool Owns(VertexId v) const { return adj_.count(v) > 0; }
  size_t num_vertices() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// All out-neighbors of an owned vertex.
  std::span<const Neighbor> Neighbors(VertexId v) const;
  /// Out-neighbors of an owned vertex restricted to one edge type.
  std::span<const Neighbor> Neighbors(VertexId v, EdgeType type) const;

  /// Attribute id of an owned vertex (kNoAttr when absent).
  AttrId VertexAttr(VertexId v) const;

  /// The vertices this server owns, in insertion order.
  const std::vector<VertexId>& owned_vertices() const { return owned_; }

  /// Installs / accesses the server-local neighbor cache (may be null).
  void set_neighbor_cache(std::unique_ptr<NeighborCache> cache) {
    neighbor_cache_ = std::move(cache);
  }
  NeighborCache* neighbor_cache() const { return neighbor_cache_.get(); }

  /// Approximate resident bytes of the adjacency storage.
  size_t MemoryBytes() const;

 private:
  struct Adj {
    std::vector<Neighbor> neighbors;       // segmented by type
    std::vector<uint32_t> type_offsets;    // size num_edge_types + 1
    AttrId attr = kNoAttr;
  };

  WorkerId id_;
  size_t num_edge_types_;
  bool finalized_ = false;
  size_t num_edges_ = 0;
  std::vector<VertexId> owned_;
  std::unordered_map<VertexId, Adj> adj_;
  // Build-time staging: per-vertex edges tagged with their type.
  std::unordered_map<VertexId, std::vector<std::pair<EdgeType, Neighbor>>>
      staging_;
  std::unique_ptr<NeighborCache> neighbor_cache_;
};

}  // namespace aligraph

#endif  // ALIGRAPH_CLUSTER_GRAPH_SERVER_H_
