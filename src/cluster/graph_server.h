/// \file graph_server.h
/// \brief One worker of the simulated cluster: owns a source-partitioned
/// subgraph stored as per-vertex, type-segmented adjacency lists plus an
/// optional neighbor cache and an LRU attribute cache (the paper's IV/IE
/// front caches).
///
/// Two extensions over the plain owned store:
///   - **Replica storage.** A server may additionally hold full adjacency
///     copies of hub vertices owned elsewhere (Placement replica sets);
///     replica reads are served at local cost.
///   - **Epoch-versioned deltas.** Online updates never mutate the finalized
///     base adjacency. Instead the cluster's update path publishes an
///     immutable delta table mapping vertex -> ascending chain of adjacency
///     versions; `NeighborsAt(v, epoch)` resolves to the newest version at
///     or below the epoch, falling back to the base (owned, then replica)
///     lists. Published version payloads are immutable and retained until
///     no pinned reader can reach them (see epoch.h), so spans returned to
///     a pinned reader stay valid for the pin's lifetime.
#ifndef ALIGRAPH_CLUSTER_GRAPH_SERVER_H_
#define ALIGRAPH_CLUSTER_GRAPH_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/epoch.h"
#include "common/lru_cache.h"
#include "graph/graph.h"
#include "storage/neighbor_cache.h"

namespace aligraph {

/// \brief One immutable adjacency snapshot of one vertex at one epoch,
/// type-segmented exactly like the base storage.
struct AdjVersion {
  uint64_t epoch = 0;
  std::vector<Neighbor> neighbors;     // segmented by type
  std::vector<uint32_t> type_offsets;  // size num_edge_types + 1
};
using AdjVersionPtr = std::shared_ptr<const AdjVersion>;

/// Vertex -> ascending-epoch chain of published versions. Tables are
/// immutable once published; the updater copies-on-write.
using DeltaTable =
    std::unordered_map<VertexId, std::vector<AdjVersionPtr>>;

/// \brief Per-server local storage of the vertices it owns (and replicates).
///
/// Adjacency for each stored vertex is one contiguous vector segmented by
/// edge type, so both "all neighbors" and "neighbors of type t" are O(1)
/// span views. Construction: AddEdge/AddReplicaEdge calls followed by one
/// Finalize.
class GraphServer {
 public:
  GraphServer(WorkerId id, size_t num_edge_types)
      : id_(id), num_edge_types_(num_edge_types) {}

  WorkerId id() const { return id_; }

  /// Registers ownership of a vertex (may hold zero edges).
  void AddVertex(VertexId v, AttrId attr);

  /// Buffers one out-edge of an owned vertex.
  void AddEdge(VertexId src, EdgeType type, const Neighbor& neighbor);

  /// Registers a replica copy of a vertex owned by another worker.
  void AddReplicaVertex(VertexId v, AttrId attr);

  /// Buffers one out-edge of a replicated vertex.
  void AddReplicaEdge(VertexId src, EdgeType type, const Neighbor& neighbor);

  /// Compacts buffered edges into type-segmented adjacency. Must be called
  /// exactly once, after which AddEdge is illegal.
  void Finalize();

  bool Owns(VertexId v) const { return adj_.count(v) > 0; }
  /// True when this server holds a replica copy of v (not the primary).
  bool HasReplica(VertexId v) const { return replica_adj_.count(v) > 0; }
  /// True when any copy (owned or replica) of v lives here.
  bool ServesCopy(VertexId v) const { return Owns(v) || HasReplica(v); }

  size_t num_vertices() const { return adj_.size(); }
  size_t num_replicas() const { return replica_adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// All out-neighbors of a stored vertex at the latest epoch.
  std::span<const Neighbor> Neighbors(VertexId v) const {
    return NeighborsAt(v, kEpochCurrent);
  }
  /// Out-neighbors restricted to one edge type, latest epoch.
  std::span<const Neighbor> Neighbors(VertexId v, EdgeType type) const {
    return NeighborsAt(v, type, kEpochCurrent);
  }

  /// All out-neighbors of a stored vertex as of `epoch`: the newest
  /// published version with version.epoch <= epoch, else the base list
  /// (owned first, then replica). kEpochCurrent resolves to the newest.
  std::span<const Neighbor> NeighborsAt(VertexId v, uint64_t epoch) const;
  /// Typed variant of NeighborsAt.
  std::span<const Neighbor> NeighborsAt(VertexId v, EdgeType type,
                                        uint64_t epoch) const;

  /// Attribute id of a stored vertex (kNoAttr when absent). Attributes are
  /// immutable under online updates.
  AttrId VertexAttr(VertexId v) const;

  /// The vertices this server owns, in insertion order.
  const std::vector<VertexId>& owned_vertices() const { return owned_; }

  /// Current delta table (null until the first PublishDelta).
  std::shared_ptr<const DeltaTable> delta_snapshot() const;

  /// Atomically replaces the delta table. Called by the cluster's update
  /// path with a fully built immutable table; readers see either the old or
  /// the new table, never a partial one.
  void PublishDelta(std::shared_ptr<const DeltaTable> table);

  /// Installs / accesses the server-local neighbor cache (may be null).
  void set_neighbor_cache(std::unique_ptr<NeighborCache> cache) {
    neighbor_cache_ = std::move(cache);
  }
  NeighborCache* neighbor_cache() const { return neighbor_cache_.get(); }

  /// Approximate resident bytes of the adjacency storage (owned + replica +
  /// published deltas).
  size_t MemoryBytes() const;

 private:
  struct Adj {
    std::vector<Neighbor> neighbors;       // segmented by type
    std::vector<uint32_t> type_offsets;    // size num_edge_types + 1
    AttrId attr = kNoAttr;
  };
  using Staging =
      std::unordered_map<VertexId, std::vector<std::pair<EdgeType, Neighbor>>>;

  void CompactInto(Staging& staging, std::unordered_map<VertexId, Adj>& out);
  const Adj* FindBase(VertexId v) const;
  /// Newest version of v at or below epoch, or null. The returned pointer's
  /// payload outlives the call per the retention contract above.
  const AdjVersion* ResolveVersion(VertexId v, uint64_t epoch) const;

  WorkerId id_;
  size_t num_edge_types_;
  bool finalized_ = false;
  size_t num_edges_ = 0;
  std::vector<VertexId> owned_;
  std::unordered_map<VertexId, Adj> adj_;
  std::unordered_map<VertexId, Adj> replica_adj_;
  // Build-time staging: per-vertex edges tagged with their type.
  Staging staging_;
  Staging replica_staging_;
  std::unique_ptr<NeighborCache> neighbor_cache_;

  // Published updates. has_delta_ is the hot-path probe that keeps the
  // never-updated case lock-free; the mutex only guards the pointer swap.
  mutable std::mutex delta_mu_;
  std::shared_ptr<const DeltaTable> delta_;
  std::atomic<bool> has_delta_{false};
};

}  // namespace aligraph

#endif  // ALIGRAPH_CLUSTER_GRAPH_SERVER_H_
