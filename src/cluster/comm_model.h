/// \file comm_model.h
/// \brief Accounting for local vs. remote data access in the simulated
/// cluster.
///
/// The real AliGraph runs on a physical cluster where a remote neighbor
/// fetch costs a network round trip. Our cluster is in-process, so remote
/// fetches are *counted* and charged a configurable modeled latency; system
/// benchmarks report measured compute time plus this modeled communication
/// time. The relative comparisons the paper makes (cached vs. uncached,
/// importance vs. random vs. LRU caching) depend only on the *counts*,
/// which the simulation reproduces exactly.

#ifndef ALIGRAPH_CLUSTER_COMM_MODEL_H_
#define ALIGRAPH_CLUSTER_COMM_MODEL_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace aligraph {

/// \brief Mutable access counters; thread-safe.
struct CommStats {
  std::atomic<uint64_t> local_reads{0};    ///< served from the owning server
  std::atomic<uint64_t> cache_hits{0};     ///< served from a local cache copy
  std::atomic<uint64_t> remote_reads{0};   ///< required a cross-server fetch

  void Reset() {
    local_reads = 0;
    cache_hits = 0;
    remote_reads = 0;
  }

  uint64_t TotalReads() const {
    return local_reads.load() + cache_hits.load() + remote_reads.load();
  }

  std::string ToString() const;
};

/// \brief Latency model for charged communication.
struct CommModel {
  /// Modeled cost of one remote neighbor/attribute fetch, microseconds.
  /// Default approximates an intra-datacenter RPC.
  double remote_latency_us = 50.0;
  /// Modeled cost of a local cache/owned read, microseconds.
  double local_latency_us = 0.1;

  /// Total modeled time for the recorded accesses, milliseconds.
  double ModeledMillis(const CommStats& stats) const {
    const double local = static_cast<double>(stats.local_reads.load() +
                                             stats.cache_hits.load());
    const double remote = static_cast<double>(stats.remote_reads.load());
    return (local * local_latency_us + remote * remote_latency_us) * 1e-3;
  }
};

}  // namespace aligraph

#endif  // ALIGRAPH_CLUSTER_COMM_MODEL_H_
