/// \file comm_model.h
/// \brief Accounting for local vs. remote data access in the simulated
/// cluster.
///
/// The real AliGraph runs on a physical cluster where a remote neighbor
/// fetch costs a network round trip. Our cluster is in-process, so remote
/// fetches are *counted* and charged a configurable modeled latency; system
/// benchmarks report measured compute time plus this modeled communication
/// time. The relative comparisons the paper makes (cached vs. uncached,
/// importance vs. random vs. LRU caching) depend only on the *counts*,
/// which the simulation reproduces exactly.
///
/// The model distinguishes per-message cost from per-item payload cost:
/// a batched read that moves 1000 vertices in one request pays one RPC
/// latency plus 1000 item costs, while 1000 individual reads pay 1000 RPC
/// latencies. This is what makes coalescing visible in modeled time.

#ifndef ALIGRAPH_CLUSTER_COMM_MODEL_H_
#define ALIGRAPH_CLUSTER_COMM_MODEL_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace aligraph {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// \brief Mutable access counters; thread-safe.
struct CommStats {
  std::atomic<uint64_t> local_reads{0};    ///< served from the owning server
  /// Served from a replica copy stored on the reading worker itself — local
  /// cost, no network, but distinct from local_reads so replication's
  /// contribution is visible.
  std::atomic<uint64_t> replica_reads{0};
  std::atomic<uint64_t> cache_hits{0};     ///< served from a local cache copy
  std::atomic<uint64_t> remote_reads{0};   ///< required a cross-server fetch
  /// Coalesced cross-server requests: one per (call, destination worker).
  std::atomic<uint64_t> remote_batches{0};
  /// Remote reads that traveled inside a coalesced batch (subset of
  /// remote_reads); remote_reads - batched_remote_reads were individual RPCs.
  std::atomic<uint64_t> batched_remote_reads{0};
  /// Faults injected on remote request attempts (transient + timeout +
  /// slow), charged by the retry layer when a FaultInjector is installed.
  std::atomic<uint64_t> faults_injected{0};
  /// Retry attempts beyond each remote request's first attempt.
  std::atomic<uint64_t> retry_attempts{0};
  /// Modeled microseconds of retry backoff plus injected timeout/slow
  /// latency — the time a real cluster would lose to the faults.
  std::atomic<uint64_t> retry_backoff_us{0};
  /// Remote requests (messages) that exhausted their retry budget; the
  /// affected read slots carry no data and samplers degrade instead.
  std::atomic<uint64_t> failed_reads{0};

  /// \brief Plain (copyable) snapshot of the counters, for benches and
  /// before/after deltas. CommStats itself is non-copyable (atomics).
  struct Snapshot {
    uint64_t local_reads = 0;
    uint64_t replica_reads = 0;
    uint64_t cache_hits = 0;
    uint64_t remote_reads = 0;
    uint64_t remote_batches = 0;
    uint64_t batched_remote_reads = 0;
    uint64_t faults_injected = 0;
    uint64_t retry_attempts = 0;
    uint64_t retry_backoff_us = 0;
    uint64_t failed_reads = 0;

    /// Counter-wise difference `*this - earlier` (counts accumulated since
    /// `earlier` was taken).
    Snapshot Delta(const Snapshot& earlier) const {
      Snapshot d;
      d.local_reads = local_reads - earlier.local_reads;
      d.replica_reads = replica_reads - earlier.replica_reads;
      d.cache_hits = cache_hits - earlier.cache_hits;
      d.remote_reads = remote_reads - earlier.remote_reads;
      d.remote_batches = remote_batches - earlier.remote_batches;
      d.batched_remote_reads =
          batched_remote_reads - earlier.batched_remote_reads;
      d.faults_injected = faults_injected - earlier.faults_injected;
      d.retry_attempts = retry_attempts - earlier.retry_attempts;
      d.retry_backoff_us = retry_backoff_us - earlier.retry_backoff_us;
      d.failed_reads = failed_reads - earlier.failed_reads;
      return d;
    }

    uint64_t TotalReads() const {
      return local_reads + replica_reads + cache_hits + remote_reads;
    }

    /// Adds every field into `registry` as a counter named
    /// "<prefix>.<field>" (e.g. "table4.batched.remote_reads"). Use with a
    /// Delta snapshot to export one phase's communication into a report.
    void ExportTo(obs::MetricsRegistry& registry,
                  const std::string& prefix) const;

    std::string ToString() const;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.local_reads = local_reads.load();
    s.replica_reads = replica_reads.load();
    s.cache_hits = cache_hits.load();
    s.remote_reads = remote_reads.load();
    s.remote_batches = remote_batches.load();
    s.batched_remote_reads = batched_remote_reads.load();
    s.faults_injected = faults_injected.load();
    s.retry_attempts = retry_attempts.load();
    s.retry_backoff_us = retry_backoff_us.load();
    s.failed_reads = failed_reads.load();
    return s;
  }

  void Reset() {
    local_reads = 0;
    replica_reads = 0;
    cache_hits = 0;
    remote_reads = 0;
    remote_batches = 0;
    batched_remote_reads = 0;
    faults_injected = 0;
    retry_attempts = 0;
    retry_backoff_us = 0;
    failed_reads = 0;
  }

  uint64_t TotalReads() const {
    return local_reads.load() + replica_reads.load() + cache_hits.load() +
           remote_reads.load();
  }

  std::string ToString() const;
};

/// \brief Latency model for charged communication.
///
/// Remote cost splits into a per-message latency (one per RPC: an
/// individual read is one message, a coalesced batch to one worker is one
/// message) and a per-item payload cost (one per vertex moved). Batching
/// therefore amortizes remote_rpc_us over the batch while per-item cost is
/// unchanged — 1000 reads in 1 message model as 1*rpc + 1000*item instead
/// of 1000*(rpc + item).
struct CommModel {
  /// Modeled per-message cost of one cross-server request, microseconds.
  /// Default approximates an intra-datacenter RPC round trip.
  double remote_rpc_us = 50.0;
  /// Modeled per-item payload cost of one vertex's adjacency in a remote
  /// response, microseconds (serialization + wire + deserialization).
  double remote_item_us = 0.5;
  /// Modeled cost of a local cache/owned read, microseconds.
  double local_latency_us = 0.1;

  /// Total modeled time for the recorded accesses, milliseconds. Retry
  /// traffic is charged in full: every retry attempt and every
  /// ultimately-failed request costs one RPC message, and the accumulated
  /// backoff / injected latency (retry_backoff_us) is added verbatim — so
  /// benches under fault injection reflect what the faults cost.
  double ModeledMillis(const CommStats::Snapshot& s) const {
    const double local =
        static_cast<double>(s.local_reads + s.replica_reads + s.cache_hits);
    // Individually-issued remote reads are one message each; coalesced
    // reads share their batch's message. Retries re-send their message;
    // failed requests paid their first message without yielding a read.
    const uint64_t individual = s.remote_reads - s.batched_remote_reads;
    const double messages = static_cast<double>(
        individual + s.remote_batches + s.retry_attempts + s.failed_reads);
    const double items = static_cast<double>(s.remote_reads);
    const double fault_us = static_cast<double>(s.retry_backoff_us);
    return (local * local_latency_us + messages * remote_rpc_us +
            items * remote_item_us + fault_us) *
           1e-3;
  }

  double ModeledMillis(const CommStats& stats) const {
    return ModeledMillis(stats.snapshot());
  }
};

}  // namespace aligraph

#endif  // ALIGRAPH_CLUSTER_COMM_MODEL_H_
