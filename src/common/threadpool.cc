#include "common/threadpool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aligraph {

ThreadPool::ThreadPool(size_t num_threads, const std::string& lane)
    : lane_(lane) {
  ALIGRAPH_CHECK_GT(num_threads, 0u);
  if (!lane_.empty()) {
    queue_depth_ = obs::DefaultGauge("pool." + lane_ + ".queue_depth");
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

Status ThreadPool::Submit(std::function<void()> task) {
  // Cross-thread causal handoff: capture the submitter's trace context so
  // spans the task opens on a worker thread parent under the submitting
  // span instead of minting disconnected root traces.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.trace_id != 0) {
    task = [ctx, inner = std::move(task)] {
      obs::ScopedTraceContext adopt(ctx);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Submit/Shutdown race surface: once stop_ is set the workers may
    // already be gone, so a task enqueued here would never run (or worse,
    // the queue would outlive the join). Reject under the same lock that
    // Shutdown takes, so the caller gets a Status instead of a silent drop.
    if (stop_) {
      return Status::FailedPrecondition(
          "ThreadPool" + (lane_.empty() ? "" : " lane '" + lane_ + "'") +
          " is shut down; task rejected");
    }
    queue_.push_back(std::move(task));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
  }
  cv_task_.notify_one();
  return Status::OK();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(n, threads_.size());
  const size_t chunk = (n + workers - 1) / workers;
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < workers; ++w) {
    const Status submitted = Submit([&next, n, chunk, &fn] {
      // One span per worker task (not per index): visible in the timeline
      // without flooding the span rings at large n.
      obs::ScopedSpan span("pool/parallel_for");
      while (true) {
        const size_t begin = next.fetch_add(chunk);
        if (begin >= n) break;
        const size_t end = std::min(begin + chunk, n);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
    if (!submitted.ok()) return;  // shut down: nothing enqueued, nothing runs
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<double>(queue_.size()));
      }
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace aligraph
