#include "common/threadpool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "obs/trace.h"

namespace aligraph {

ThreadPool::ThreadPool(size_t num_threads) {
  ALIGRAPH_CHECK_GT(num_threads, 0u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Cross-thread causal handoff: capture the submitter's trace context so
  // spans the task opens on a worker thread parent under the submitting
  // span instead of minting disconnected root traces.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.trace_id != 0) {
    task = [ctx, inner = std::move(task)] {
      obs::ScopedTraceContext adopt(ctx);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(n, threads_.size());
  const size_t chunk = (n + workers - 1) / workers;
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < workers; ++w) {
    Submit([&next, n, chunk, &fn] {
      // One span per worker task (not per index): visible in the timeline
      // without flooding the span rings at large n.
      obs::ScopedSpan span("pool/parallel_for");
      while (true) {
        const size_t begin = next.fetch_add(chunk);
        if (begin >= n) break;
        const size_t end = std::min(begin + chunk, n);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace aligraph
