/// \file histogram.h
/// \brief Summary statistics and power-law diagnostics.
///
/// The paper's Theorems 1 and 2 claim that k-hop degree counts and the
/// importance metric Imp(v) follow power-law distributions; FitPowerLawSlope
/// provides the log-log regression the property tests and bench_theorems use
/// to verify that claim empirically.

#ifndef ALIGRAPH_COMMON_HISTOGRAM_H_
#define ALIGRAPH_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aligraph {

/// \brief Streaming summary of a sample: count / mean / min / max /
/// percentiles.
///
/// Percentile / ToString are const so report code can take a
/// `const Summary&`: the lazy sort mutates only the `mutable` value buffer
/// (same multiset of samples, reordered), which is unobservable through the
/// public interface. Not thread-safe.
class Summary {
 public:
  void Add(double v);

  size_t count() const { return values_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Percentile in [0, 100]; sorts lazily.
  double Percentile(double p) const;

  std::string ToString() const;

 private:
  mutable std::vector<double> values_;
  double sum_ = 0;
  mutable bool sorted_ = false;
};

/// \brief Result of a discrete power-law fit Pr(X = q) ~ q^{-gamma}.
struct PowerLawFit {
  double slope = 0;      ///< Fitted -gamma (negative for power laws).
  double r_squared = 0;  ///< Goodness of the log-log linear fit.
  size_t points = 0;     ///< Number of distinct (value, frequency) points.
};

/// \brief Fits a line to (log value, log frequency) over the positive entries
/// of the sample. Values <= 0 are skipped. Returns slope ~ -gamma; for a
/// power-law sample the fit is strongly linear (r_squared close to 1).
PowerLawFit FitPowerLawSlope(const std::vector<double>& sample,
                             size_t num_buckets = 32);

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_HISTOGRAM_H_
