/// \file logging.h
/// \brief Minimal leveled logging and CHECK-style invariant macros.
///
/// Logging is stderr-based and thread-safe at line granularity. CHECK
/// failures print the failing condition with source location and abort:
/// they signal programmer errors, never recoverable conditions (those use
/// Status, see status.h).

#ifndef ALIGRAPH_COMMON_LOGGING_H_
#define ALIGRAPH_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace aligraph {

/// \brief Severity of a log line; lines below the global threshold are
/// dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum level; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (or aborts, for kFatal) on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows streamed values when a log line is compiled out or filtered.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace aligraph

#define ALIGRAPH_LOG(level)                                             \
  ::aligraph::internal::LogMessage(::aligraph::LogLevel::k##level,      \
                                   __FILE__, __LINE__)                  \
      .stream()

#define ALIGRAPH_CHECK(cond)                                            \
  if (!(cond))                                                          \
  ::aligraph::internal::LogMessage(::aligraph::LogLevel::kFatal,        \
                                   __FILE__, __LINE__)                  \
          .stream()                                                     \
      << "Check failed: " #cond " "

#define ALIGRAPH_CHECK_OK(expr)                                         \
  do {                                                                  \
    ::aligraph::Status _st = (expr);                                    \
    ALIGRAPH_CHECK(_st.ok()) << _st.ToString();                         \
  } while (0)

#define ALIGRAPH_CHECK_EQ(a, b) ALIGRAPH_CHECK((a) == (b))
#define ALIGRAPH_CHECK_NE(a, b) ALIGRAPH_CHECK((a) != (b))
#define ALIGRAPH_CHECK_LT(a, b) ALIGRAPH_CHECK((a) < (b))
#define ALIGRAPH_CHECK_LE(a, b) ALIGRAPH_CHECK((a) <= (b))
#define ALIGRAPH_CHECK_GT(a, b) ALIGRAPH_CHECK((a) > (b))
#define ALIGRAPH_CHECK_GE(a, b) ALIGRAPH_CHECK((a) >= (b))

#define ALIGRAPH_DCHECK(cond) ALIGRAPH_CHECK(cond)

#endif  // ALIGRAPH_COMMON_LOGGING_H_
