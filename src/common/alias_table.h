/// \file alias_table.h
/// \brief Walker alias method: O(1) sampling from a fixed discrete
/// distribution after O(n) build. Backs the NEGATIVE sampler (degree^0.75
/// noise distribution) and weighted NEIGHBORHOOD sampling.

#ifndef ALIGRAPH_COMMON_ALIAS_TABLE_H_
#define ALIGRAPH_COMMON_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace aligraph {

/// \brief Immutable alias table over indices [0, n).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from non-negative weights; weights need not be normalized.
  /// An all-zero or empty weight vector yields an empty table.
  explicit AliasTable(const std::vector<double>& weights) { Build(weights); }

  /// Rebuilds the table in place.
  void Build(const std::vector<double>& weights);

  /// Draws one index; table must be non-empty.
  size_t Sample(Rng& rng) const {
    const size_t i = rng.Uniform(prob_.size());
    return rng.NextDouble() < prob_[i] ? i : alias_[i];
  }

  bool empty() const { return prob_.empty(); }
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_ALIAS_TABLE_H_
