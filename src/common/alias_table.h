/// \file alias_table.h
/// \brief Walker alias method: O(1) sampling from a fixed discrete
/// distribution after O(n) build. Backs the NEGATIVE sampler (degree^0.75
/// noise distribution), weighted NEIGHBORHOOD sampling and the Zipf root
/// generator of the serving layer.

#ifndef ALIGRAPH_COMMON_ALIAS_TABLE_H_
#define ALIGRAPH_COMMON_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace aligraph {

/// \brief Immutable alias table over indices [0, n).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from non-negative weights; weights need not be normalized.
  /// An all-zero or empty weight vector yields an empty table.
  /// CHECK-fails on NaN or negative weights (see TryBuild for the
  /// status-returning variant).
  explicit AliasTable(const std::vector<double>& weights) { Build(weights); }

  /// Rebuilds the table in place. CHECK-fails on NaN or negative weights:
  /// a corrupt prob_ table silently biases every later draw, which is far
  /// harder to debug than an early abort.
  void Build(const std::vector<double>& weights);

  /// Like Build, but rejects NaN / negative weights with InvalidArgument
  /// instead of aborting. On rejection the table is left empty.
  Status TryBuild(const std::vector<double>& weights);

  /// Draws one index; table must be non-empty.
  size_t Sample(Rng& rng) const {
    const size_t i = rng.Uniform(prob_.size());
    return rng.NextDouble() < prob_[i] ? i : alias_[i];
  }

  /// Reusable scratch buffers for SampleBatch, so steady-state batched
  /// draws allocate nothing.
  struct BatchScratch {
    std::vector<uint32_t> idx;
    std::vector<double> u;
  };

  /// Draws out.size() indices in two passes: pass 1 consumes the RNG
  /// stream exactly as a scalar `for { Sample(rng) }` loop would (one
  /// Uniform then one NextDouble per draw, in order), pass 2 resolves the
  /// accept/alias branches with the prob_/alias_ rows prefetched ahead.
  /// Bit-identical to the scalar loop on the same stream — including the
  /// single-entry and all-equal-weight tables, where every branch accepts
  /// but the stream must still advance two draws per sample. Table must be
  /// non-empty unless out is empty.
  void SampleBatch(Rng& rng, std::span<size_t> out,
                   BatchScratch* scratch = nullptr) const;

  bool empty() const { return prob_.empty(); }
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_ALIAS_TABLE_H_
