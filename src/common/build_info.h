/// \file build_info.h
/// \brief Identity of the running binary: git SHA, compiler, build type.
///
/// Run reports embed these so a bench JSON is attributable to the exact
/// build that produced it — the regression gate compares numbers across
/// commits, and a diff without provenance is noise. Values degrade to
/// "unknown" when the build system could not determine them (tarball
/// builds, exotic compilers), never to an empty string.

#ifndef ALIGRAPH_COMMON_BUILD_INFO_H_
#define ALIGRAPH_COMMON_BUILD_INFO_H_

namespace aligraph {

/// Abbreviated git commit SHA the binary was configured from (CMake runs
/// `git rev-parse` at configure time), or "unknown" outside a checkout.
const char* BuildGitSha();

/// Compiler name and version string, e.g. "gcc 13.2.0" or
/// "clang 17.0.6 ...".
const char* BuildCompilerId();

/// CMAKE_BUILD_TYPE of this binary ("RelWithDebInfo", "Debug", ...), or
/// "unknown" when built without CMake.
const char* BuildType();

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_BUILD_INFO_H_
