/// \file lru_cache.h
/// \brief Least-recently-used cache, the replacement policy the paper applies
/// to the attribute indices IV/IE (Section 3.2) and one of the neighbor-cache
/// comparators in Figure 9.

#ifndef ALIGRAPH_COMMON_LRU_CACHE_H_
#define ALIGRAPH_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace aligraph {

/// \brief Fixed-capacity map evicting the least-recently-used entry.
///
/// Not internally synchronized; callers that share a cache across threads
/// wrap it (the lock-free request buckets in the cluster module make each
/// cache single-threaded by construction, matching the paper's design).
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    ALIGRAPH_CHECK_GT(capacity, 0u);
  }

  /// Returns the value for key and marks it most-recently-used.
  std::optional<V> Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites key, evicting the LRU entry when full.
  void Put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (index_.size() >= capacity_) {
      auto& victim = order_.back();
      if (eviction_callback_) eviction_callback_(victim.first, victim.second);
      index_.erase(victim.first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  bool Contains(const K& key) const { return index_.count(key) > 0; }
  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }

  /// Access statistics; used by the Fig. 9 cache-policy benchmark.
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }
  double HitRate() const {
    const size_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

  /// Drops key if present, invoking the eviction callback (the entry leaves
  /// the cache, just not under capacity pressure — the eviction counter is
  /// untouched). Returns true when the key was held.
  bool Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    if (eviction_callback_) {
      eviction_callback_(it->second->first, it->second->second);
    }
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  /// Invoked with (key, value) just before an entry is evicted.
  void SetEvictionCallback(std::function<void(const K&, V&)> cb) {
    eviction_callback_ = std::move(cb);
  }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> index_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  std::function<void(const K&, V&)> eviction_callback_;
};

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_LRU_CACHE_H_
