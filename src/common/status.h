/// \file status.h
/// \brief Error-handling primitives in the RocksDB/Arrow idiom.
///
/// AliGraph core paths do not throw: fallible operations return a Status
/// (for procedures) or a Result<T> (for functions producing a value).
/// Programmer errors (broken invariants) abort via the CHECK macros in
/// logging.h instead.

#ifndef ALIGRAPH_COMMON_STATUS_H_
#define ALIGRAPH_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace aligraph {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kNotSupported = 8,
  kIoError = 9,
  /// A (simulated) remote worker failed to answer within the retry budget.
  /// Distinct from kResourceExhausted (local backpressure, e.g. a full
  /// request bucket): Unavailable means retrying elsewhere or degrading;
  /// ResourceExhausted means the caller should run the work itself.
  kUnavailable = 10,
};

/// \brief Returns a short human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// \brief The outcome of a fallible operation: either OK or a coded error
/// with a message.
///
/// Status is cheap to copy when OK (one byte of state plus an empty string)
/// and cheap to move always. Typical use:
///
/// \code
///   Status s = builder.AddEdge(src, dst);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Result replaces the (Status, out-parameter) pattern for value-producing
/// functions. Accessing the value of an error Result aborts, so callers must
/// check ok() first:
///
/// \code
///   Result<Graph> g = LoadGraph(path);
///   if (!g.ok()) return g.status();
///   Use(g.value());
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse ("return MakeGraph();" / "return Status::NotFound(...)").
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : var_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// Returns OK when holding a value, the stored error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value when OK, otherwise the provided fallback.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> var_;
};

/// Propagates an error Status out of the enclosing function.
#define ALIGRAPH_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::aligraph::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (0)

#define ALIGRAPH_CONCAT_IMPL(a, b) a##b
#define ALIGRAPH_CONCAT(a, b) ALIGRAPH_CONCAT_IMPL(a, b)

/// Evaluates a Result expression, propagating errors, else binds the value.
#define ALIGRAPH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value();

#define ALIGRAPH_ASSIGN_OR_RETURN(lhs, expr) \
  ALIGRAPH_ASSIGN_OR_RETURN_IMPL(ALIGRAPH_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_STATUS_H_
