/// \file threadpool.h
/// \brief Fixed-size worker pool used to simulate cluster workers, to
/// parallelize graph building and training, and — as named lanes — to run
/// the stages of the block pipeline on dedicated threads.

#ifndef ALIGRAPH_COMMON_THREADPOOL_H_
#define ALIGRAPH_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace aligraph {

namespace obs {
class Gauge;
}  // namespace obs

/// \brief A fixed pool of threads draining a shared FIFO of tasks.
///
/// Submit() enqueues a task; Wait() blocks until every submitted task has
/// finished. The pool is reusable across Wait() rounds. Shutdown() drains
/// the queue, joins the threads and fails every later Submit with a
/// FailedPrecondition Status — the destructor calls it implicitly.
///
/// A pool constructed with a lane name is a *named lane*: it resolves a
/// "pool.<lane>.queue_depth" gauge from the default metrics registry (when
/// one is attached at construction) and keeps it current on every enqueue /
/// dequeue, so per-lane backlogs — e.g. the pipeline's sample and gather
/// lanes — are visible in run reports next to the pipeline stage metrics.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, const std::string& lane = "");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some pool thread. Returns OK when the
  /// task was enqueued; FailedPrecondition — without enqueueing or aborting
  /// — when the pool has been shut down.
  Status Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  /// Runs fn(i) for every i in [0, n), spread over the pool, and waits.
  /// Chunks the index space so per-call overhead stays negligible. After
  /// Shutdown() this is a no-op (the submits fail, Wait returns at once).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Finishes every already-enqueued task, joins the worker threads and
  /// rejects all later Submits. Idempotent; called by the destructor.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  const std::string& lane() const { return lane_; }

 private:
  void WorkerLoop();

  std::string lane_;
  obs::Gauge* queue_depth_ = nullptr;  ///< named lanes only; else null
  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_THREADPOOL_H_
