/// \file threadpool.h
/// \brief Fixed-size worker pool used to simulate cluster workers and to
/// parallelize graph building and training.

#ifndef ALIGRAPH_COMMON_THREADPOOL_H_
#define ALIGRAPH_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aligraph {

/// \brief A fixed pool of threads draining a shared FIFO of tasks.
///
/// Submit() enqueues a task; Wait() blocks until every submitted task has
/// finished. The pool is reusable across Wait() rounds and joins its threads
/// on destruction.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some pool thread.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  /// Runs fn(i) for every i in [0, n), spread over the pool, and waits.
  /// Chunks the index space so per-call overhead stays negligible.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_THREADPOOL_H_
