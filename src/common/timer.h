/// \file timer.h
/// \brief Wall-clock stopwatch used by benchmarks and the cluster simulator.

#ifndef ALIGRAPH_COMMON_TIMER_H_
#define ALIGRAPH_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace aligraph {

/// \brief Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in the requested unit.
  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }
  double ElapsedMillis() const { return ElapsedNanos() * 1e-6; }
  double ElapsedMicros() const { return ElapsedNanos() * 1e-3; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_TIMER_H_
