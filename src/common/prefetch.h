/// \file prefetch.h
/// \brief Software prefetch hint, compiled out on toolchains without
/// __builtin_prefetch. Used on the sampling hot path (CSR neighbor walks,
/// alias-table batch resolution) where the next access's address is known
/// a few iterations ahead but the hardware prefetcher cannot see it
/// through the index indirection.

#ifndef ALIGRAPH_COMMON_PREFETCH_H_
#define ALIGRAPH_COMMON_PREFETCH_H_

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
/// Read prefetch with high temporal locality into all cache levels.
#define ALIGRAPH_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define ALIGRAPH_PREFETCH(addr) ((void)sizeof(addr))
#endif

namespace aligraph {

/// Cache-line granularity assumed by the prefetch helpers. A wrong guess
/// only costs redundant hint instructions, never correctness.
inline constexpr size_t kCacheLineBytes = 64;

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_PREFETCH_H_
