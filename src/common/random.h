/// \file random.h
/// \brief Fast deterministic PRNGs and distribution helpers.
///
/// All randomized components of AliGraph (generators, samplers, model
/// initialization) take an explicit seed so experiments are reproducible.
/// Rng is xoshiro256**; SplitMix64 seeds it and doubles as a cheap hash.

#ifndef ALIGRAPH_COMMON_RANDOM_H_
#define ALIGRAPH_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace aligraph {

/// \brief One step of the SplitMix64 sequence; also usable as a mixing hash.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Stateless 64-bit mix of a value (Stafford variant 13).
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

/// \brief xoshiro256** PRNG: small, fast and statistically strong enough for
/// sampling workloads. Not cryptographic.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the full 256-bit state from one 64-bit value via SplitMix64.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface, so Rng plugs into <random>.
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping; bias is negligible for
    // bounds far below 2^64 (always true for graph sizes).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (one value per call; simple beats fast
  /// here, init paths only).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Samples an index from an (unnormalized) weight vector by linear scan.
  /// For repeated sampling from the same weights use AliasTable instead.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace aligraph

#endif  // ALIGRAPH_COMMON_RANDOM_H_
