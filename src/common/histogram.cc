#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace aligraph {

void Summary::Add(double v) {
  values_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

double Summary::mean() const {
  return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
}

double Summary::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1 - frac) + values_[hi] * frac;
}

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << mean() << " p50=" << Percentile(50)
     << " p99=" << Percentile(99) << " max=" << max();
  return os.str();
}

PowerLawFit FitPowerLawSlope(const std::vector<double>& sample,
                             size_t num_buckets) {
  PowerLawFit fit;
  double vmax = 0;
  for (double v : sample) vmax = std::max(vmax, v);
  if (vmax <= 1.0 || num_buckets < 3) return fit;

  // Logarithmic binning: bucket i covers [b^i, b^{i+1}) with b chosen so
  // num_buckets buckets span [1, vmax]. Density = count / bucket width.
  const double base = std::pow(vmax, 1.0 / static_cast<double>(num_buckets));
  std::vector<double> counts(num_buckets, 0.0);
  for (double v : sample) {
    if (v < 1.0) continue;
    size_t i = static_cast<size_t>(std::log(v) / std::log(base));
    if (i >= num_buckets) i = num_buckets - 1;
    counts[i] += 1.0;
  }

  std::vector<double> xs, ys;
  for (size_t i = 0; i < num_buckets; ++i) {
    if (counts[i] <= 0) continue;
    const double lo = std::pow(base, static_cast<double>(i));
    const double hi = std::pow(base, static_cast<double>(i + 1));
    const double center = std::sqrt(lo * hi);
    const double density = counts[i] / (hi - lo);
    xs.push_back(std::log(center));
    ys.push_back(std::log(density));
  }
  fit.points = xs.size();
  if (xs.size() < 3) return fit;

  // Ordinary least squares on the log-log points.
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  const double ss_tot = syy - sy * sy / n;
  const double ss_res = ss_tot - fit.slope * (sxy - sx * sy / n);
  fit.r_squared = ss_tot <= 0 ? 0.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace aligraph
