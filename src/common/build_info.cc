#include "common/build_info.h"

namespace aligraph {

namespace {

#define ALIGRAPH_STR_INNER(x) #x
#define ALIGRAPH_STR(x) ALIGRAPH_STR_INNER(x)

}  // namespace

const char* BuildGitSha() {
#ifdef ALIGRAPH_GIT_SHA
  return ALIGRAPH_STR(ALIGRAPH_GIT_SHA);
#else
  return "unknown";
#endif
}

const char* BuildCompilerId() {
#if defined(__clang_version__)
  return "clang " __clang_version__;
#elif defined(__GNUC__) && defined(__VERSION__)
  return "gcc " __VERSION__;
#elif defined(__VERSION__)
  return __VERSION__;
#else
  return "unknown";
#endif
}

const char* BuildType() {
#ifdef ALIGRAPH_BUILD_TYPE
  return ALIGRAPH_STR(ALIGRAPH_BUILD_TYPE);
#else
  return "unknown";
#endif
}

}  // namespace aligraph
