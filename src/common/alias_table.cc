#include "common/alias_table.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/prefetch.h"

namespace aligraph {

namespace {

/// NaN, infinite or negative entries would flow straight into prob_ as
/// garbage acceptance thresholds (NaN compares false, so the alias branch
/// fires forever; an infinity turns the normalization into NaN; negatives
/// push other entries' scaled mass past 1).
Status ValidateWeights(const std::vector<double>& weights) {
  for (size_t i = 0; i < weights.size(); ++i) {
    if (std::isnan(weights[i])) {
      return Status::InvalidArgument("alias weight " + std::to_string(i) +
                                     " is NaN");
    }
    if (!std::isfinite(weights[i])) {
      return Status::InvalidArgument("alias weight " + std::to_string(i) +
                                     " is not finite");
    }
    if (weights[i] < 0) {
      return Status::InvalidArgument("alias weight " + std::to_string(i) +
                                     " is negative");
    }
  }
  return Status::OK();
}

}  // namespace

void AliasTable::Build(const std::vector<double>& weights) {
  const Status st = TryBuild(weights);
  ALIGRAPH_CHECK(st.ok()) << st.ToString();
}

Status AliasTable::TryBuild(const std::vector<double>& weights) {
  prob_.clear();
  alias_.clear();
  const Status valid = ValidateWeights(weights);
  if (!valid.ok()) return valid;

  const size_t n = weights.size();
  if (n == 0) return Status::OK();

  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return Status::OK();

  prob_.resize(n);
  alias_.assign(n, 0);

  // Scaled probabilities; mean is exactly 1.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers all get probability 1.
  for (uint32_t i : small) prob_[i] = 1.0;
  for (uint32_t i : large) prob_[i] = 1.0;
  return Status::OK();
}

void AliasTable::SampleBatch(Rng& rng, std::span<size_t> out,
                             BatchScratch* scratch) const {
  if (out.empty()) return;
  ALIGRAPH_CHECK(!empty());

  BatchScratch local;
  BatchScratch& s = scratch != nullptr ? *scratch : local;
  const size_t count = out.size();
  s.idx.resize(count);
  s.u.resize(count);

  // Pass 1: the RNG draws, in exactly the order the scalar loop makes
  // them. Nothing else happens here, so the stream consumed is a pure
  // function of `count` — the bit-identity contract.
  for (size_t j = 0; j < count; ++j) {
    s.idx[j] = static_cast<uint32_t>(rng.Uniform(prob_.size()));
    s.u[j] = rng.NextDouble();
  }

  // Pass 2: resolve the accept/alias branch. The row needed `kAhead`
  // iterations from now is prefetched so the (random-index) loads overlap.
  constexpr size_t kAhead = 8;
  for (size_t j = 0; j < count; ++j) {
    if (j + kAhead < count) {
      ALIGRAPH_PREFETCH(&prob_[s.idx[j + kAhead]]);
      ALIGRAPH_PREFETCH(&alias_[s.idx[j + kAhead]]);
    }
    const uint32_t i = s.idx[j];
    out[j] = s.u[j] < prob_[i] ? i : alias_[i];
  }
}

}  // namespace aligraph
