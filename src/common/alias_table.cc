#include "common/alias_table.h"

#include <vector>

namespace aligraph {

void AliasTable::Build(const std::vector<double>& weights) {
  prob_.clear();
  alias_.clear();
  const size_t n = weights.size();
  if (n == 0) return;

  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return;

  prob_.resize(n);
  alias_.assign(n, 0);

  // Scaled probabilities; mean is exactly 1.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers all get probability 1.
  for (uint32_t i : small) prob_[i] = 1.0;
  for (uint32_t i : large) prob_[i] = 1.0;
}

}  // namespace aligraph
