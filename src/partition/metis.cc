/// \file metis.cc
/// \brief Multilevel k-way partitioner in the METIS style: heavy-edge
/// matching coarsening, greedy seeded region growing on the coarsest graph,
/// and greedy boundary refinement on each uncoarsening level.

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "partition/partitioner.h"

namespace aligraph {
namespace {

/// Lightweight weighted graph used internally across coarsening levels.
struct Level {
  std::vector<uint64_t> offsets;           // CSR offsets, size n+1
  std::vector<uint32_t> adj;               // neighbor ids
  std::vector<double> adj_w;               // edge weights
  std::vector<double> vertex_w;            // coarse vertex weights
  std::vector<uint32_t> coarse_of;         // fine -> coarse map (next level)
  size_t n() const { return vertex_w.size(); }
};

Level FromGraph(const AttributedGraph& g) {
  Level lv;
  const VertexId n = g.num_vertices();
  lv.vertex_w.assign(n, 1.0);
  lv.offsets.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    lv.offsets[v + 1] = lv.offsets[v] + g.OutDegree(v) + g.InDegree(v);
  }
  lv.adj.resize(lv.offsets[n]);
  lv.adj_w.resize(lv.offsets[n]);
  std::vector<uint64_t> cur(lv.offsets.begin(), lv.offsets.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : g.OutNeighbors(v)) {
      lv.adj[cur[v]] = nb.dst;
      lv.adj_w[cur[v]++] = nb.weight;
    }
    for (const Neighbor& nb : g.InNeighbors(v)) {
      lv.adj[cur[v]] = nb.dst;
      lv.adj_w[cur[v]++] = nb.weight;
    }
  }
  return lv;
}

/// Heavy-edge matching: each unmatched vertex pairs with its heaviest
/// unmatched neighbor; pairs merge into one coarse vertex.
Level Coarsen(Level& fine, Rng& rng) {
  const size_t n = fine.n();
  std::vector<uint32_t> match(n, UINT32_MAX);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }

  uint32_t coarse_n = 0;
  fine.coarse_of.assign(n, UINT32_MAX);
  for (uint32_t v : order) {
    if (match[v] != UINT32_MAX) continue;
    uint32_t best = UINT32_MAX;
    double best_w = -1;
    for (uint64_t e = fine.offsets[v]; e < fine.offsets[v + 1]; ++e) {
      const uint32_t u = fine.adj[e];
      if (u == v || match[u] != UINT32_MAX) continue;
      if (fine.adj_w[e] > best_w) {
        best_w = fine.adj_w[e];
        best = u;
      }
    }
    match[v] = (best == UINT32_MAX) ? v : best;
    if (best != UINT32_MAX) match[best] = v;
    fine.coarse_of[v] = coarse_n;
    if (best != UINT32_MAX) fine.coarse_of[best] = coarse_n;
    ++coarse_n;
  }

  Level coarse;
  coarse.vertex_w.assign(coarse_n, 0.0);
  for (size_t v = 0; v < n; ++v) {
    coarse.vertex_w[fine.coarse_of[v]] += fine.vertex_w[v];
  }

  // Aggregate fine edges into coarse edges, merging parallels.
  std::vector<std::vector<std::pair<uint32_t, double>>> buckets(coarse_n);
  for (size_t v = 0; v < n; ++v) {
    const uint32_t cv = fine.coarse_of[v];
    for (uint64_t e = fine.offsets[v]; e < fine.offsets[v + 1]; ++e) {
      const uint32_t cu = fine.coarse_of[fine.adj[e]];
      if (cu == cv) continue;
      buckets[cv].emplace_back(cu, fine.adj_w[e]);
    }
  }
  coarse.offsets.assign(coarse_n + 1, 0);
  for (uint32_t v = 0; v < coarse_n; ++v) {
    auto& b = buckets[v];
    std::sort(b.begin(), b.end());
    size_t out = 0;
    for (size_t i = 0; i < b.size();) {
      size_t j = i;
      double w = 0;
      while (j < b.size() && b[j].first == b[i].first) w += b[j++].second;
      b[out++] = {b[i].first, w};
      i = j;
    }
    b.resize(out);
    coarse.offsets[v + 1] = coarse.offsets[v] + out;
  }
  coarse.adj.resize(coarse.offsets[coarse_n]);
  coarse.adj_w.resize(coarse.offsets[coarse_n]);
  for (uint32_t v = 0; v < coarse_n; ++v) {
    uint64_t e = coarse.offsets[v];
    for (const auto& [u, w] : buckets[v]) {
      coarse.adj[e] = u;
      coarse.adj_w[e++] = w;
    }
  }
  return coarse;
}

/// Greedy seeded region growing of the coarsest level into p balanced parts.
std::vector<WorkerId> InitialPartition(const Level& lv, uint32_t p, Rng& rng) {
  const size_t n = lv.n();
  std::vector<WorkerId> part(n, UINT32_MAX);
  double total_w = 0;
  for (double w : lv.vertex_w) total_w += w;
  const double target = total_w / p;

  std::vector<uint32_t> frontier;
  for (uint32_t w = 0; w < p; ++w) {
    double grown = 0;
    // Seed: a random unassigned vertex.
    uint32_t seed = UINT32_MAX;
    for (size_t tries = 0; tries < n; ++tries) {
      const uint32_t cand = static_cast<uint32_t>(rng.Uniform(n));
      if (part[cand] == UINT32_MAX) {
        seed = cand;
        break;
      }
    }
    if (seed == UINT32_MAX) {
      for (uint32_t v = 0; v < n; ++v) {
        if (part[v] == UINT32_MAX) {
          seed = v;
          break;
        }
      }
    }
    if (seed == UINT32_MAX) break;
    frontier.clear();
    frontier.push_back(seed);
    part[seed] = w;
    grown += lv.vertex_w[seed];
    // BFS growth until the target weight is reached.
    for (size_t head = 0; head < frontier.size() && grown < target; ++head) {
      const uint32_t v = frontier[head];
      for (uint64_t e = lv.offsets[v]; e < lv.offsets[v + 1]; ++e) {
        const uint32_t u = lv.adj[e];
        if (part[u] != UINT32_MAX) continue;
        part[u] = w;
        grown += lv.vertex_w[u];
        frontier.push_back(u);
        if (grown >= target && w + 1 < p) break;
      }
    }
  }
  // Leftovers (disconnected pieces) go to the lightest part.
  std::vector<double> loads(p, 0);
  for (size_t v = 0; v < n; ++v) {
    if (part[v] != UINT32_MAX) loads[part[v]] += lv.vertex_w[v];
  }
  for (uint32_t v = 0; v < n; ++v) {
    if (part[v] == UINT32_MAX) {
      const auto it = std::min_element(loads.begin(), loads.end());
      const WorkerId w = static_cast<WorkerId>(it - loads.begin());
      part[v] = w;
      loads[w] += lv.vertex_w[v];
    }
  }
  return part;
}

/// One pass of greedy boundary refinement: move a vertex to the neighboring
/// part with the largest cut gain if balance allows.
void Refine(const Level& lv, uint32_t p, double max_load,
            std::vector<WorkerId>& part) {
  std::vector<double> loads(p, 0);
  for (size_t v = 0; v < lv.n(); ++v) loads[part[v]] += lv.vertex_w[v];

  std::vector<double> gain(p, 0);
  for (uint32_t v = 0; v < lv.n(); ++v) {
    std::fill(gain.begin(), gain.end(), 0.0);
    for (uint64_t e = lv.offsets[v]; e < lv.offsets[v + 1]; ++e) {
      gain[part[lv.adj[e]]] += lv.adj_w[e];
    }
    const WorkerId cur = part[v];
    WorkerId best = cur;
    double best_gain = gain[cur];
    for (uint32_t w = 0; w < p; ++w) {
      if (w == cur) continue;
      if (loads[w] + lv.vertex_w[v] > max_load) continue;
      if (gain[w] > best_gain) {
        best_gain = gain[w];
        best = w;
      }
    }
    if (best != cur) {
      loads[cur] -= lv.vertex_w[v];
      loads[best] += lv.vertex_w[v];
      part[v] = best;
    }
  }
}

}  // namespace

Result<PartitionPlan> MetisPartitioner::Partition(const AttributedGraph& graph,
                                                  uint32_t num_workers) const {
  if (num_workers == 0) return Status::InvalidArgument("num_workers == 0");
  const VertexId n = graph.num_vertices();
  PartitionPlan plan;
  plan.num_workers = num_workers;
  if (n == 0) return plan;
  if (num_workers == 1) {
    plan.vertex_owner.assign(n, 0);
    return plan;
  }

  Rng rng(0x4d455449u);  // deterministic partitioning

  std::vector<Level> levels;
  levels.push_back(FromGraph(graph));
  const size_t stop_at = std::max<size_t>(coarsen_to_ * num_workers, 2 * num_workers);
  while (levels.back().n() > stop_at) {
    Level next = Coarsen(levels.back(), rng);
    if (next.n() >= levels.back().n() * 95 / 100) break;  // stalled matching
    levels.push_back(std::move(next));
  }

  std::vector<WorkerId> part =
      InitialPartition(levels.back(), num_workers, rng);

  double total_w = 0;
  for (double w : levels.back().vertex_w) total_w += w;
  const double max_load = 1.1 * total_w / num_workers;

  // Refine at the coarsest level, then project and refine at each level up.
  for (size_t i = levels.size(); i-- > 0;) {
    for (int pass = 0; pass < 2; ++pass) {
      Refine(levels[i], num_workers, max_load, part);
    }
    if (i > 0) {
      std::vector<WorkerId> fine_part(levels[i - 1].n());
      for (size_t v = 0; v < levels[i - 1].n(); ++v) {
        fine_part[v] = part[levels[i - 1].coarse_of[v]];
      }
      part.swap(fine_part);
    }
  }

  plan.vertex_owner.assign(part.begin(), part.end());
  return plan;
}

}  // namespace aligraph
