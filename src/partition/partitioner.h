/// \file partitioner.h
/// \brief Graph-partitioning plugin interface and the four built-in
/// algorithms of the paper's storage layer (Section 3.2):
///
///   1. METIS-style multilevel partitioning (sparse graphs),
///   2. hash edge-cut and greedy vertex-cut (dense graphs),
///   3. 2-D grid partitioning (fixed worker count),
///   4. streaming linear-deterministic-greedy (frequent edge updates).
///
/// Per Section 3.3 the distributed graph is partitioned by source vertex:
/// a partitioner's primary output is the vertex -> worker ownership map.
/// AssignEdge (the paper's ASSIGN in Algorithm 2) defaults to the owner of
/// the source endpoint.

#ifndef ALIGRAPH_PARTITION_PARTITIONER_H_
#define ALIGRAPH_PARTITION_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace aligraph {

/// \brief Result of partitioning: the ownership map plus worker count.
struct PartitionPlan {
  uint32_t num_workers = 1;
  std::vector<WorkerId> vertex_owner;  ///< size n; owner of each vertex

  WorkerId OwnerOf(VertexId v) const { return vertex_owner[v]; }
  /// Worker an edge's adjacency record lives on (source partitioning).
  WorkerId AssignEdge(VertexId src, VertexId dst) const {
    (void)dst;
    return vertex_owner[src];
  }
};

/// \brief Quality metrics of a plan over a given graph.
struct PartitionStats {
  double edge_cut_fraction = 0;  ///< crossing edges / total edges
  double vertex_balance = 0;     ///< max vertices per worker / average
  double edge_balance = 0;       ///< max out-edges per worker / average
  std::string ToString() const;
};

/// Computes quality metrics of a plan.
PartitionStats ComputePartitionStats(const AttributedGraph& graph,
                                     const PartitionPlan& plan);

/// \brief Plugin interface; implementations must be stateless across calls.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::string name() const = 0;

  /// Produces an ownership map over num_workers workers.
  virtual Result<PartitionPlan> Partition(const AttributedGraph& graph,
                                          uint32_t num_workers) const = 0;
};

/// \brief Random hash edge-cut: owner(v) = hash(v) mod p. The baseline the
/// paper recommends for dense graphs ("vertex and edge cut" family).
class EdgeCutPartitioner : public Partitioner {
 public:
  std::string name() const override { return "edge_cut"; }
  Result<PartitionPlan> Partition(const AttributedGraph& graph,
                                  uint32_t num_workers) const override;
};

/// \brief Greedy vertex-cut in the PowerGraph style: edges are placed on the
/// least-loaded worker already holding an endpoint; each vertex is owned by
/// the worker holding most of its out-edges.
class VertexCutPartitioner : public Partitioner {
 public:
  std::string name() const override { return "vertex_cut"; }
  Result<PartitionPlan> Partition(const AttributedGraph& graph,
                                  uint32_t num_workers) const override;

  /// Average number of workers each vertex's edges touch in the last run is
  /// reported via this out-parameter variant.
  Result<PartitionPlan> PartitionWithReplication(const AttributedGraph& graph,
                                                 uint32_t num_workers,
                                                 double* replication) const;
};

/// \brief 2-D partitioning: workers form an r x c grid; vertices are
/// range-assigned to grid blocks. Used when the worker count is fixed.
class Grid2DPartitioner : public Partitioner {
 public:
  std::string name() const override { return "grid2d"; }
  Result<PartitionPlan> Partition(const AttributedGraph& graph,
                                  uint32_t num_workers) const override;
};

/// \brief Streaming linear-deterministic-greedy (Stanton-Kliot): vertices
/// arrive in id order and go to the worker with the most already-placed
/// neighbors, damped by a capacity penalty.
class StreamingPartitioner : public Partitioner {
 public:
  /// \param slack allowed overload factor over perfect balance (>= 1).
  explicit StreamingPartitioner(double slack = 1.1) : slack_(slack) {}
  std::string name() const override { return "streaming"; }
  Result<PartitionPlan> Partition(const AttributedGraph& graph,
                                  uint32_t num_workers) const override;

 private:
  double slack_;
};

/// \brief Multilevel partitioner in the METIS style: heavy-edge-matching
/// coarsening, greedy region-growing of the coarsest graph, then uncoarsening
/// with boundary refinement. Recommended for sparse graphs.
class MetisPartitioner : public Partitioner {
 public:
  /// \param coarsen_to stop coarsening when at most this many vertices
  ///        remain per worker.
  explicit MetisPartitioner(size_t coarsen_to = 64) : coarsen_to_(coarsen_to) {}
  std::string name() const override { return "metis"; }
  Result<PartitionPlan> Partition(const AttributedGraph& graph,
                                  uint32_t num_workers) const override;

 private:
  size_t coarsen_to_;
};

/// Factory over the built-in partitioner names: "edge_cut", "vertex_cut",
/// "grid2d", "streaming", "metis". Users may register additional plugins by
/// instantiating their own Partitioner subclasses directly.
Result<std::unique_ptr<Partitioner>> MakePartitioner(const std::string& name);

}  // namespace aligraph

#endif  // ALIGRAPH_PARTITION_PARTITIONER_H_
