/// \file partitioner.h
/// \brief Graph-partitioning plugin interface, the replica-aware Placement
/// the storage layer consumes, and the built-in algorithms of the paper's
/// storage layer (Section 3.2):
///
///   1. METIS-style multilevel partitioning (sparse graphs),
///   2. hash edge-cut and greedy vertex-cut (dense graphs),
///   3. 2-D grid partitioning (fixed worker count),
///   4. streaming linear-deterministic-greedy (frequent edge updates),
///   5. skew-aware hybrid: vertex-cut/replicate the hubs, delegate the
///      tail to any of the above (GLISP-style, for power-law graphs).
///
/// Per Section 3.3 the distributed graph is partitioned by source vertex: a
/// partitioner's primary output is the vertex -> worker ownership map. A
/// Placement extends that map with optional per-vertex replica sets — a
/// replicated vertex's adjacency is stored on its primary owner AND every
/// replica worker, so hub reads are served locally (or spread across
/// copies) instead of hammering one hot server. A placement with an empty
/// replica table is exactly the historical single-owner plan, and
/// PartitionPlan remains as an alias for that degenerate form.

#ifndef ALIGRAPH_PARTITION_PARTITIONER_H_
#define ALIGRAPH_PARTITION_PARTITIONER_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace aligraph {

/// \brief Result of partitioning: ownership map, worker count and the
/// (possibly empty) replica table.
struct Placement {
  uint32_t num_workers = 1;
  std::vector<WorkerId> vertex_owner;  ///< size n; primary owner per vertex
  /// Replica workers per replicated vertex, primary excluded, each list
  /// sorted ascending and duplicate-free. Vertices absent from the table
  /// live only on their primary owner — the degenerate single-owner form.
  std::unordered_map<VertexId, std::vector<WorkerId>> replicas;

  WorkerId OwnerOf(VertexId v) const { return vertex_owner[v]; }

  /// Worker an edge's adjacency record primarily lives on (source
  /// partitioning; replicas hold additional copies).
  WorkerId AssignEdge(VertexId src, VertexId dst) const {
    (void)dst;
    return vertex_owner[src];
  }

  bool HasReplicas() const { return !replicas.empty(); }

  /// Replica workers of v (empty span for unreplicated vertices).
  std::span<const WorkerId> ReplicasOf(VertexId v) const {
    auto it = replicas.find(v);
    if (it == replicas.end()) return {};
    return it->second;
  }

  /// True when worker w holds a copy of v's adjacency (primary or replica).
  bool ServesLocally(VertexId v, WorkerId w) const {
    if (vertex_owner[v] == w) return true;
    for (const WorkerId r : ReplicasOf(v)) {
      if (r == w) return true;
    }
    return false;
  }

  /// Worker that services a read of v issued from `from`: the reader itself
  /// when it holds a copy (local > replicated), otherwise a deterministic
  /// hash-spread choice over all copies so hub traffic does not converge on
  /// the primary owner. Pure in (v, from) — two identical runs route
  /// identically.
  WorkerId ServingWorker(VertexId v, WorkerId from) const;

  /// Average copies per vertex: 1.0 without replication.
  double ReplicationFactor() const {
    if (vertex_owner.empty()) return 1.0;
    size_t extra = 0;
    for (const auto& [v, workers] : replicas) extra += workers.size();
    return 1.0 + static_cast<double>(extra) /
                     static_cast<double>(vertex_owner.size());
  }
};

/// The historical single-owner plan IS the degenerate no-replica placement;
/// every pre-replication caller keeps compiling against this alias.
using PartitionPlan = Placement;

/// \brief Quality metrics of a placement over a given graph.
struct PartitionStats {
  double edge_cut_fraction = 0;  ///< crossing edges / total edges
  double vertex_balance = 0;     ///< max vertices per worker / average
  double edge_balance = 0;       ///< max out-edges per worker / average
  /// Average adjacency copies per vertex (1.0 = no replication).
  double replication_factor = 1.0;
  /// Modeled share of serviced read traffic landing on the busiest worker
  /// (in [1/p, 1]); traffic per vertex is in-degree-proportional, readers
  /// uniform over workers, reads routed by Placement::ServingWorker. The
  /// hot-server number replication is built to push down.
  double hot_server_share = 0;
  std::string ToString() const;
};

/// Computes quality metrics of a placement.
PartitionStats ComputePartitionStats(const AttributedGraph& graph,
                                     const Placement& placement);

/// \brief Plugin interface; implementations must be stateless across calls.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::string name() const = 0;

  /// Produces a placement over num_workers workers. Base partitioners
  /// return replica-free placements; replica-aware ones (hybrid) fill the
  /// replica table as well.
  virtual Result<Placement> Partition(const AttributedGraph& graph,
                                      uint32_t num_workers) const = 0;
};

/// \brief Random hash edge-cut: owner(v) = hash(v) mod p. The baseline the
/// paper recommends for dense graphs ("vertex and edge cut" family).
class EdgeCutPartitioner : public Partitioner {
 public:
  std::string name() const override { return "edge_cut"; }
  Result<Placement> Partition(const AttributedGraph& graph,
                              uint32_t num_workers) const override;
};

/// \brief Greedy vertex-cut in the PowerGraph style: edges are placed on the
/// least-loaded worker already holding an endpoint; each vertex is owned by
/// the worker holding most of its out-edges.
class VertexCutPartitioner : public Partitioner {
 public:
  std::string name() const override { return "vertex_cut"; }
  Result<Placement> Partition(const AttributedGraph& graph,
                              uint32_t num_workers) const override;

  /// Average number of workers each vertex's edges touch in the last run is
  /// reported via this out-parameter variant.
  Result<Placement> PartitionWithReplication(const AttributedGraph& graph,
                                             uint32_t num_workers,
                                             double* replication) const;
};

/// \brief 2-D partitioning: workers form an r x c grid; vertices are
/// range-assigned to grid blocks. Used when the worker count is fixed.
class Grid2DPartitioner : public Partitioner {
 public:
  std::string name() const override { return "grid2d"; }
  Result<Placement> Partition(const AttributedGraph& graph,
                              uint32_t num_workers) const override;
};

/// \brief Streaming linear-deterministic-greedy (Stanton-Kliot): vertices
/// arrive in id order and go to the worker with the most already-placed
/// neighbors, damped by a capacity penalty.
class StreamingPartitioner : public Partitioner {
 public:
  /// \param slack allowed overload factor over perfect balance (>= 1).
  explicit StreamingPartitioner(double slack = 1.1) : slack_(slack) {}
  std::string name() const override { return "streaming"; }
  Result<Placement> Partition(const AttributedGraph& graph,
                              uint32_t num_workers) const override;

 private:
  double slack_;
};

/// \brief Multilevel partitioner in the METIS style: heavy-edge-matching
/// coarsening, greedy region-growing of the coarsest graph, then uncoarsening
/// with boundary refinement. Recommended for sparse graphs.
class MetisPartitioner : public Partitioner {
 public:
  /// \param coarsen_to stop coarsening when at most this many vertices
  ///        remain per worker.
  explicit MetisPartitioner(size_t coarsen_to = 64) : coarsen_to_(coarsen_to) {}
  std::string name() const override { return "metis"; }
  Result<Placement> Partition(const AttributedGraph& graph,
                              uint32_t num_workers) const override;

 private:
  size_t coarsen_to_;
};

/// \brief Skew-aware hybrid (GLISP-style): hub vertices above a degree
/// threshold are replicated onto k workers (vertex-cut for the head of the
/// power law); everything else is delegated to a tail partitioner. On a
/// hub-free graph the result is exactly the tail partitioner's placement.
class HybridSkewPartitioner : public Partitioner {
 public:
  struct Options {
    /// Explicit out-degree threshold for hub status; 0 = derive from
    /// hub_fraction.
    size_t degree_threshold = 0;
    /// When deriving the threshold: replicate (at most) the top fraction of
    /// vertices by out-degree. Hubs must beat the mean degree regardless,
    /// so uniform-degree graphs stay replica-free.
    double hub_fraction = 0.01;
    /// Copies per hub INCLUDING the primary; 0 = every worker.
    uint32_t replicas = 0;
    /// Name of the partitioner that places the tail (any MakePartitioner
    /// name except "hybrid").
    std::string tail = "edge_cut";
  };

  HybridSkewPartitioner() : HybridSkewPartitioner(Options()) {}
  explicit HybridSkewPartitioner(Options options);

  std::string name() const override { return "hybrid"; }
  Result<Placement> Partition(const AttributedGraph& graph,
                              uint32_t num_workers) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Names MakePartitioner resolves, sorted: "edge_cut", "grid2d", "hybrid",
/// "metis", "streaming", "vertex_cut".
const std::vector<std::string>& KnownPartitionerNames();

/// Factory over the built-in partitioner names (see KnownPartitionerNames).
/// Unknown names fail with a NotFound Status that lists every valid name.
/// Users may register additional plugins by instantiating their own
/// Partitioner subclasses directly.
Result<std::unique_ptr<Partitioner>> MakePartitioner(const std::string& name);

}  // namespace aligraph

#endif  // ALIGRAPH_PARTITION_PARTITIONER_H_
