#include "partition/partitioner.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <sstream>

#include "common/logging.h"
#include "common/random.h"

namespace aligraph {

WorkerId Placement::ServingWorker(VertexId v, WorkerId from) const {
  if (vertex_owner[v] == from) return from;
  auto it = replicas.find(v);
  if (it == replicas.end()) return vertex_owner[v];
  const std::vector<WorkerId>& extra = it->second;
  for (const WorkerId r : extra) {
    if (r == from) return from;
  }
  // Remote read of a replicated vertex: spread deterministically over all
  // copies (primary + replicas) keyed by (v, from) so distinct readers fan
  // out while any single reader stays stable across retries.
  const size_t copies = extra.size() + 1;
  const size_t idx = static_cast<size_t>(
      Mix64(static_cast<uint64_t>(v) ^ (static_cast<uint64_t>(from) << 32)) %
      copies);
  return idx == 0 ? vertex_owner[v] : extra[idx - 1];
}

std::string PartitionStats::ToString() const {
  std::ostringstream os;
  os << "cut=" << edge_cut_fraction << " vbal=" << vertex_balance
     << " ebal=" << edge_balance << " repl=" << replication_factor
     << " hot=" << hot_server_share;
  return os.str();
}

PartitionStats ComputePartitionStats(const AttributedGraph& graph,
                                     const Placement& placement) {
  PartitionStats stats;
  const VertexId n = graph.num_vertices();
  const uint32_t p = placement.num_workers;
  std::vector<size_t> vcount(p, 0), ecount(p, 0);
  size_t crossing = 0, total = 0;
  for (VertexId v = 0; v < n; ++v) {
    const WorkerId w = placement.OwnerOf(v);
    ++vcount[w];
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      ++ecount[w];
      ++total;
      if (placement.OwnerOf(nb.dst) != w) ++crossing;
    }
  }
  stats.edge_cut_fraction =
      total == 0 ? 0.0 : static_cast<double>(crossing) / total;
  const double vavg = static_cast<double>(n) / p;
  const double eavg = static_cast<double>(total) / p;
  size_t vmax = 0, emax = 0;
  for (uint32_t w = 0; w < p; ++w) {
    vmax = std::max(vmax, vcount[w]);
    emax = std::max(emax, ecount[w]);
  }
  stats.vertex_balance = vavg > 0 ? vmax / vavg : 0;
  stats.edge_balance = eavg > 0 ? emax / eavg : 0;
  stats.replication_factor = placement.ReplicationFactor();

  // Modeled serviced-traffic distribution: each vertex v attracts
  // in-degree-proportional read traffic (hubs are read in proportion to how
  // many adjacency lists mention them; +1 keeps isolated vertices warm),
  // issued uniformly from every worker and routed by ServingWorker. The
  // busiest worker's share is the hot-server metric replication targets.
  std::vector<double> served(p, 0.0);
  double traffic_total = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const double traffic = static_cast<double>(graph.InDegree(v)) + 1.0;
    traffic_total += traffic;
    const double per_reader = traffic / static_cast<double>(p);
    for (uint32_t from = 0; from < p; ++from) {
      served[placement.ServingWorker(v, static_cast<WorkerId>(from))] +=
          per_reader;
    }
  }
  double served_max = 0.0;
  for (uint32_t w = 0; w < p; ++w) served_max = std::max(served_max, served[w]);
  stats.hot_server_share =
      traffic_total > 0 ? served_max / traffic_total : 0.0;
  return stats;
}

Result<PartitionPlan> EdgeCutPartitioner::Partition(
    const AttributedGraph& graph, uint32_t num_workers) const {
  if (num_workers == 0) return Status::InvalidArgument("num_workers == 0");
  PartitionPlan plan;
  plan.num_workers = num_workers;
  plan.vertex_owner.resize(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    plan.vertex_owner[v] = static_cast<WorkerId>(Mix64(v) % num_workers);
  }
  return plan;
}

Result<PartitionPlan> VertexCutPartitioner::Partition(
    const AttributedGraph& graph, uint32_t num_workers) const {
  return PartitionWithReplication(graph, num_workers, nullptr);
}

Result<PartitionPlan> VertexCutPartitioner::PartitionWithReplication(
    const AttributedGraph& graph, uint32_t num_workers,
    double* replication) const {
  if (num_workers == 0) return Status::InvalidArgument("num_workers == 0");
  const VertexId n = graph.num_vertices();
  const uint32_t p = num_workers;

  // replicas[v] is the bitset (capped at 64 workers; beyond that we fall
  // back to hashing) of workers already holding an edge of v.
  const bool use_bits = p <= 64;
  std::vector<uint64_t> replicas(use_bits ? n : 0, 0);
  std::vector<size_t> load(p, 0);
  // edges_on[v][w] counts v's out-edges on worker w, used for the majority
  // ownership vote; tracked sparsely via per-vertex best counters.
  std::vector<WorkerId> best_worker(n, 0);
  std::vector<uint32_t> best_count(n, 0);
  std::vector<std::vector<uint32_t>> per_vertex_counts;
  if (use_bits) per_vertex_counts.assign(n, std::vector<uint32_t>());

  auto pick = [&](VertexId u, VertexId v) -> WorkerId {
    if (!use_bits) return static_cast<WorkerId>(Mix64(u ^ Mix64(v)) % p);
    const uint64_t cand = replicas[u] | replicas[v];
    WorkerId best = 0;
    size_t best_load = SIZE_MAX;
    if (cand != 0) {
      for (uint32_t w = 0; w < p; ++w) {
        if ((cand >> w) & 1) {
          if (load[w] < best_load) {
            best_load = load[w];
            best = w;
          }
        }
      }
      return best;
    }
    for (uint32_t w = 0; w < p; ++w) {
      if (load[w] < best_load) {
        best_load = load[w];
        best = w;
      }
    }
    return best;
  };

  for (VertexId u = 0; u < n; ++u) {
    for (const Neighbor& nb : graph.OutNeighbors(u)) {
      const WorkerId w = pick(u, nb.dst);
      ++load[w];
      if (use_bits) {
        replicas[u] |= 1ULL << w;
        replicas[nb.dst] |= 1ULL << w;
        auto& counts = per_vertex_counts[u];
        if (counts.size() < p) counts.resize(p, 0);
        if (++counts[w] > best_count[u]) {
          best_count[u] = counts[w];
          best_worker[u] = w;
        }
      } else {
        best_worker[u] = w;
      }
    }
  }

  PartitionPlan plan;
  plan.num_workers = p;
  plan.vertex_owner.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    // Isolated vertices hash; others follow their edge majority.
    plan.vertex_owner[v] = graph.OutDegree(v) == 0
                               ? static_cast<WorkerId>(Mix64(v) % p)
                               : best_worker[v];
  }

  if (replication != nullptr && use_bits) {
    double total = 0;
    size_t counted = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (replicas[v] == 0) continue;
      total += static_cast<double>(std::popcount(replicas[v]));
      ++counted;
    }
    *replication = counted == 0 ? 1.0 : total / static_cast<double>(counted);
  }
  return plan;
}

Result<PartitionPlan> Grid2DPartitioner::Partition(
    const AttributedGraph& graph, uint32_t num_workers) const {
  if (num_workers == 0) return Status::InvalidArgument("num_workers == 0");
  // Choose the most square grid r x c with r*c == num_workers.
  uint32_t r = 1;
  for (uint32_t d = 1; d * d <= num_workers; ++d) {
    if (num_workers % d == 0) r = d;
  }
  const uint32_t c = num_workers / r;
  const VertexId n = graph.num_vertices();

  PartitionPlan plan;
  plan.num_workers = num_workers;
  plan.vertex_owner.resize(n);
  // Vertices are range-assigned to row blocks; within a row block they are
  // spread across the columns, giving each worker a contiguous 2-D tile of
  // the adjacency matrix's row space.
  for (VertexId v = 0; v < n; ++v) {
    const uint64_t row = static_cast<uint64_t>(v) * r / std::max<VertexId>(n, 1);
    const uint32_t col = static_cast<uint32_t>(Mix64(v) % c);
    plan.vertex_owner[v] = static_cast<WorkerId>(row * c + col);
  }
  return plan;
}

Result<PartitionPlan> StreamingPartitioner::Partition(
    const AttributedGraph& graph, uint32_t num_workers) const {
  if (num_workers == 0) return Status::InvalidArgument("num_workers == 0");
  const VertexId n = graph.num_vertices();
  const uint32_t p = num_workers;
  const double capacity =
      slack_ * static_cast<double>(n) / static_cast<double>(p);

  PartitionPlan plan;
  plan.num_workers = p;
  plan.vertex_owner.assign(n, 0);
  std::vector<uint8_t> placed(n, 0);
  std::vector<size_t> load(p, 0);
  std::vector<double> score(p, 0);

  for (VertexId v = 0; v < n; ++v) {
    std::fill(score.begin(), score.end(), 0.0);
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      if (placed[nb.dst]) score[plan.vertex_owner[nb.dst]] += 1.0;
    }
    for (const Neighbor& nb : graph.InNeighbors(v)) {
      if (placed[nb.dst]) score[plan.vertex_owner[nb.dst]] += 1.0;
    }
    WorkerId best = 0;
    double best_score = -1.0;
    for (uint32_t w = 0; w < p; ++w) {
      const double penalty = 1.0 - static_cast<double>(load[w]) / capacity;
      const double s = (score[w] + 1e-9) * std::max(penalty, 0.0);
      if (s > best_score || (s == best_score && load[w] < load[best])) {
        best_score = s;
        best = w;
      }
    }
    plan.vertex_owner[v] = best;
    placed[v] = 1;
    ++load[best];
  }
  return plan;
}

HybridSkewPartitioner::HybridSkewPartitioner(Options options)
    : options_(std::move(options)) {}

Result<Placement> HybridSkewPartitioner::Partition(const AttributedGraph& graph,
                                                   uint32_t num_workers) const {
  if (num_workers == 0) return Status::InvalidArgument("num_workers == 0");
  if (options_.tail == "hybrid") {
    return Status::InvalidArgument("hybrid tail partitioner cannot be hybrid");
  }
  ALIGRAPH_ASSIGN_OR_RETURN(auto tail, MakePartitioner(options_.tail));
  ALIGRAPH_ASSIGN_OR_RETURN(Placement placement,
                            tail->Partition(graph, num_workers));
  if (num_workers == 1) return placement;  // nothing to replicate onto

  const VertexId n = graph.num_vertices();
  size_t threshold = options_.degree_threshold;
  if (threshold == 0) {
    // Derive: replicate at most the top hub_fraction of vertices by
    // out-degree, and only vertices strictly above the mean degree — a
    // uniform-degree graph has no hubs and stays replica-free.
    size_t total_deg = 0;
    std::vector<size_t> degrees(n);
    for (VertexId v = 0; v < n; ++v) {
      degrees[v] = graph.OutDegree(v);
      total_deg += degrees[v];
    }
    const size_t hubs = static_cast<size_t>(
        static_cast<double>(n) * std::clamp(options_.hub_fraction, 0.0, 1.0));
    if (hubs == 0 || n == 0) return placement;
    std::nth_element(degrees.begin(), degrees.end() - hubs, degrees.end());
    const size_t top_cut = degrees[n - hubs];
    const double mean = static_cast<double>(total_deg) / std::max<VertexId>(n, 1);
    threshold = std::max<size_t>(top_cut, static_cast<size_t>(mean) + 1);
    if (threshold == 0) threshold = 1;
  }

  const uint32_t copies =
      options_.replicas == 0
          ? num_workers
          : std::min<uint32_t>(std::max<uint32_t>(options_.replicas, 1),
                               num_workers);
  if (copies <= 1) return placement;

  for (VertexId v = 0; v < n; ++v) {
    if (graph.OutDegree(v) < threshold) continue;
    const WorkerId owner = placement.vertex_owner[v];
    std::vector<WorkerId> extra;
    extra.reserve(copies - 1);
    if (copies == num_workers) {
      for (uint32_t w = 0; w < num_workers; ++w) {
        if (w != owner) extra.push_back(static_cast<WorkerId>(w));
      }
    } else {
      // Deterministic spread: walk workers from a hash-derived start so hub
      // replicas don't all pile onto the same k workers.
      const uint32_t start = static_cast<uint32_t>(Mix64(v) % num_workers);
      for (uint32_t i = 0; i < num_workers && extra.size() < copies - 1; ++i) {
        const WorkerId w = static_cast<WorkerId>((start + i) % num_workers);
        if (w != owner) extra.push_back(w);
      }
      std::sort(extra.begin(), extra.end());
    }
    placement.replicas.emplace(v, std::move(extra));
  }
  return placement;
}

const std::vector<std::string>& KnownPartitionerNames() {
  static const std::vector<std::string> names = {
      "edge_cut", "grid2d", "hybrid", "metis", "streaming", "vertex_cut"};
  return names;
}

Result<std::unique_ptr<Partitioner>> MakePartitioner(const std::string& name) {
  if (name == "edge_cut") return std::unique_ptr<Partitioner>(new EdgeCutPartitioner());
  if (name == "vertex_cut") return std::unique_ptr<Partitioner>(new VertexCutPartitioner());
  if (name == "grid2d") return std::unique_ptr<Partitioner>(new Grid2DPartitioner());
  if (name == "streaming") return std::unique_ptr<Partitioner>(new StreamingPartitioner());
  if (name == "metis") return std::unique_ptr<Partitioner>(new MetisPartitioner());
  if (name == "hybrid") return std::unique_ptr<Partitioner>(new HybridSkewPartitioner());
  std::string valid;
  for (const std::string& known : KnownPartitionerNames()) {
    if (!valid.empty()) valid += ", ";
    valid += known;
  }
  return Status::NotFound("unknown partitioner: " + name +
                          " (valid: " + valid + ")");
}

}  // namespace aligraph
