/// \file neighbor_cache.h
/// \brief Per-server caches of remote vertices' out-neighbors and the three
/// policies compared in Figure 9: importance-based (the paper's), random,
/// and LRU.

#ifndef ALIGRAPH_STORAGE_NEIGHBOR_CACHE_H_
#define ALIGRAPH_STORAGE_NEIGHBOR_CACHE_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "graph/graph.h"

namespace aligraph {

/// \brief Policy interface for a server-local cache of out-neighbor lists.
///
/// Lookup returns the cached adjacency when present. OnRemoteFetch gives
/// reactive policies (LRU) a chance to admit data that was just fetched;
/// static policies (importance, random) ignore it because their contents
/// are pinned at build time.
class NeighborCache {
 public:
  virtual ~NeighborCache() = default;
  virtual std::string name() const = 0;

  /// Returns the cached neighbor list of v, if cached.
  virtual std::optional<std::span<const Neighbor>> Lookup(VertexId v) = 0;

  /// Called after a remote fetch of v's neighbors.
  virtual void OnRemoteFetch(VertexId v,
                             std::span<const Neighbor> neighbors) = 0;

  /// Drops v's entry if cached. Called by the cluster when an online update
  /// makes the cached copy stale for the reader's epoch; like every other
  /// cache call it runs on the owning worker's reading thread.
  virtual void Invalidate(VertexId v) {}

  /// Number of vertices currently cached.
  virtual size_t size() const = 0;
  /// Total cached Neighbor entries (storage cost).
  virtual size_t entry_count() const = 0;
};

/// \brief Pinned cache over a fixed vertex set, used by both the
/// importance-based and the random strategy (they differ only in how the
/// set is chosen).
class StaticNeighborCache : public NeighborCache {
 public:
  StaticNeighborCache(std::string name, const AttributedGraph& graph,
                      const std::vector<VertexId>& vertices);

  std::string name() const override { return name_; }
  std::optional<std::span<const Neighbor>> Lookup(VertexId v) override;
  void OnRemoteFetch(VertexId v,
                     std::span<const Neighbor> neighbors) override {}
  void Invalidate(VertexId v) override;
  size_t size() const override { return pinned_.size(); }
  size_t entry_count() const override { return entries_; }

 private:
  std::string name_;
  std::unordered_map<VertexId, std::vector<Neighbor>> pinned_;
  size_t entries_ = 0;
};

/// \brief Reactive LRU cache admitting every remote fetch; the comparison
/// strategy the paper reports as 50-60% slower than importance caching.
class LruNeighborCache : public NeighborCache {
 public:
  explicit LruNeighborCache(size_t capacity)
      : cache_(capacity == 0 ? 1 : capacity) {}

  std::string name() const override { return "lru"; }
  std::optional<std::span<const Neighbor>> Lookup(VertexId v) override;
  void OnRemoteFetch(VertexId v, std::span<const Neighbor> neighbors) override;
  void Invalidate(VertexId v) override;
  size_t size() const override { return cache_.size(); }
  size_t entry_count() const override { return entries_; }

 private:
  LruCache<VertexId, std::shared_ptr<std::vector<Neighbor>>> cache_;
  std::shared_ptr<std::vector<Neighbor>> last_;  // pins the last lookup
  size_t entries_ = 0;
  bool callback_installed_ = false;
};

}  // namespace aligraph

#endif  // ALIGRAPH_STORAGE_NEIGHBOR_CACHE_H_
