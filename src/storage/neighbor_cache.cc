#include "storage/neighbor_cache.h"

namespace aligraph {

StaticNeighborCache::StaticNeighborCache(std::string name,
                                         const AttributedGraph& graph,
                                         const std::vector<VertexId>& vertices)
    : name_(std::move(name)) {
  pinned_.reserve(vertices.size());
  for (VertexId v : vertices) {
    const auto nbs = graph.OutNeighbors(v);
    pinned_.emplace(v, std::vector<Neighbor>(nbs.begin(), nbs.end()));
    entries_ += nbs.size();
  }
}

std::optional<std::span<const Neighbor>> StaticNeighborCache::Lookup(
    VertexId v) {
  auto it = pinned_.find(v);
  if (it == pinned_.end()) return std::nullopt;
  return std::span<const Neighbor>(it->second);
}

void StaticNeighborCache::Invalidate(VertexId v) {
  auto it = pinned_.find(v);
  if (it == pinned_.end()) return;
  entries_ -= it->second.size();
  pinned_.erase(it);
}

std::optional<std::span<const Neighbor>> LruNeighborCache::Lookup(VertexId v) {
  auto hit = cache_.Get(v);
  if (!hit.has_value()) return std::nullopt;
  // Pin the looked-up list so the returned span outlives a later eviction.
  last_ = *hit;
  return std::span<const Neighbor>(*last_);
}

void LruNeighborCache::OnRemoteFetch(VertexId v,
                                     std::span<const Neighbor> neighbors) {
  if (cache_.Contains(v)) return;
  auto entry = std::make_shared<std::vector<Neighbor>>(neighbors.begin(),
                                                       neighbors.end());
  entries_ += entry->size();
  if (!callback_installed_) {
    callback_installed_ = true;
    cache_.SetEvictionCallback(
        [this](const VertexId&, std::shared_ptr<std::vector<Neighbor>>& val) {
          entries_ -= val->size();
        });
  }
  cache_.Put(v, std::move(entry));
}

void LruNeighborCache::Invalidate(VertexId v) {
  // Erase runs the eviction callback, which keeps entries_ exact. The last_
  // pin (if it holds this entry) keeps previously returned spans valid.
  cache_.Erase(v);
}

}  // namespace aligraph
