/// \file importance.h
/// \brief Importance-based cache selection (Algorithm 2, lines 5-9):
/// cache the 1..k-hop out-neighbors of every vertex v whose importance
/// Imp_k(v) = D_i^k(v) / D_o^k(v) reaches the threshold tau_k.
///
/// Theorem 2 of the paper shows Imp_k is power-law distributed on power-law
/// graphs, so only a small vertex fraction passes any reasonable threshold;
/// the Fig. 8 benchmark sweeps tau to reproduce that curve.

#ifndef ALIGRAPH_STORAGE_IMPORTANCE_H_
#define ALIGRAPH_STORAGE_IMPORTANCE_H_

#include <vector>

#include "graph/graph.h"

namespace aligraph {

/// \brief Outcome of importance selection at one depth.
struct ImportanceSelection {
  std::vector<VertexId> vertices;  ///< vertices whose neighbors to cache
  double cache_rate = 0;           ///< |vertices| / n
};

/// Selects the vertices with Imp_k(v) >= tau_k for each k in [1, depth].
/// A vertex is selected if it passes the threshold at any considered depth,
/// mirroring Algorithm 2's per-k caching. depth is typically 2.
ImportanceSelection SelectImportantVertices(const AttributedGraph& graph,
                                            int depth,
                                            const std::vector<double>& taus);

/// Fraction of vertices passing threshold tau at exactly depth k; backs the
/// Fig. 8 threshold sweep.
double CacheRateAtThreshold(const AttributedGraph& graph, int k, double tau);

/// Selects a uniformly random fraction of vertices (the Fig. 9 "random
/// cache" comparator).
std::vector<VertexId> SelectRandomVertices(const AttributedGraph& graph,
                                           double fraction, uint64_t seed);

/// Selects the top-`fraction` vertices by importance at depth k; used to
/// pin an importance cache of a given size for the Fig. 9 comparison.
std::vector<VertexId> SelectTopImportance(const AttributedGraph& graph, int k,
                                          double fraction);

}  // namespace aligraph

#endif  // ALIGRAPH_STORAGE_IMPORTANCE_H_
