#include "storage/importance.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"
#include "graph/khop.h"

namespace aligraph {

ImportanceSelection SelectImportantVertices(const AttributedGraph& graph,
                                            int depth,
                                            const std::vector<double>& taus) {
  ALIGRAPH_CHECK_GE(depth, 1);
  ALIGRAPH_CHECK_GE(taus.size(), static_cast<size_t>(depth));
  const VertexId n = graph.num_vertices();
  std::vector<uint8_t> selected(n, 0);
  for (int k = 1; k <= depth; ++k) {
    const std::vector<double> imp = ImportanceScores(graph, k);
    for (VertexId v = 0; v < n; ++v) {
      if (imp[v] >= taus[k - 1]) selected[v] = 1;
    }
  }
  ImportanceSelection sel;
  for (VertexId v = 0; v < n; ++v) {
    if (selected[v]) sel.vertices.push_back(v);
  }
  sel.cache_rate =
      n == 0 ? 0.0
             : static_cast<double>(sel.vertices.size()) / static_cast<double>(n);
  return sel;
}

double CacheRateAtThreshold(const AttributedGraph& graph, int k, double tau) {
  const std::vector<double> imp = ImportanceScores(graph, k);
  if (imp.empty()) return 0;
  size_t count = 0;
  for (double i : imp) {
    if (i >= tau) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(imp.size());
}

std::vector<VertexId> SelectRandomVertices(const AttributedGraph& graph,
                                           double fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> out;
  const VertexId n = graph.num_vertices();
  out.reserve(static_cast<size_t>(fraction * n) + 1);
  for (VertexId v = 0; v < n; ++v) {
    if (rng.Bernoulli(fraction)) out.push_back(v);
  }
  return out;
}

std::vector<VertexId> SelectTopImportance(const AttributedGraph& graph, int k,
                                          double fraction) {
  const std::vector<double> imp = ImportanceScores(graph, k);
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  const size_t take = std::min<size_t>(
      n, static_cast<size_t>(fraction * static_cast<double>(n) + 0.5));
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&imp](VertexId a, VertexId b) { return imp[a] > imp[b]; });
  order.resize(take);
  return order;
}

}  // namespace aligraph
