/// \file feature_source.h
/// \brief Where a block's feature matrix comes from: a pre-built matrix, a
/// local AttributedGraph's attribute store, or the simulated cluster with
/// coalesced (and fault-aware) remote attribute reads.
///
/// The block pipeline gathers features exactly once per unique vertex, so
/// the source abstraction is batched by construction: one Gather call per
/// block, never one fetch per slot. The cluster-backed source mirrors the
/// adjacency path's design — local slots are free, the remote residue is
/// deduplicated and coalesced into one message per destination worker, and
/// under fault injection each coalesced message is judged once, with
/// failed rows reported instead of aborting the batch.

#ifndef ALIGRAPH_BLOCK_FEATURE_SOURCE_H_
#define ALIGRAPH_BLOCK_FEATURE_SOURCE_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "nn/matrix.h"

namespace aligraph {

class Cluster;
struct CommStats;

namespace ops {
class HopEmbeddingCache;
}  // namespace ops

namespace block {

class SampledBlock;

/// \brief Batched feature-row provider for block gathering.
class FeatureSource {
 public:
  virtual ~FeatureSource() = default;

  /// Feature dimensionality: every gathered row has this many columns.
  virtual size_t dim() const = 0;

  /// Fills out->Row(i) with the feature row of vertices[i]. `out` must be
  /// a zero-initialized [vertices.size(), dim()] matrix. Rows whose fetch
  /// failed (fallible sources only) are left zero; when `ok` is non-null
  /// it is resized to vertices.size() with ok[i] == 0 marking the failed
  /// rows. Returns OK when every row resolved, Unavailable otherwise.
  virtual Status Gather(std::span<const VertexId> vertices, nn::Matrix* out,
                        std::vector<uint8_t>* ok = nullptr) = 0;
};

/// \brief Rows of a pre-built [num_vertices, d] matrix indexed by global
/// vertex id — the in-memory training case (e.g. BuildFeatureMatrix
/// output). The matrix must outlive the source.
class MatrixFeatureSource : public FeatureSource {
 public:
  explicit MatrixFeatureSource(const nn::Matrix& matrix) : matrix_(matrix) {}

  size_t dim() const override { return matrix_.cols(); }
  Status Gather(std::span<const VertexId> vertices, nn::Matrix* out,
                std::vector<uint8_t>* ok = nullptr) override;

 private:
  const nn::Matrix& matrix_;
};

/// \brief Raw attribute payloads of a local AttributedGraph, truncated or
/// zero-padded to `dim`. Vertices without attributes get a zero row.
class GraphFeatureSource : public FeatureSource {
 public:
  GraphFeatureSource(const AttributedGraph& graph, size_t dim)
      : graph_(graph), dim_(dim) {}

  size_t dim() const override { return dim_; }
  Status Gather(std::span<const VertexId> vertices, nn::Matrix* out,
                std::vector<uint8_t>* ok = nullptr) override;

 private:
  const AttributedGraph& graph_;
  size_t dim_;
};

/// \brief Attribute payloads read through the cluster from one worker's
/// perspective: local slots cost nothing, remote slots ride coalesced
/// per-worker attribute messages (Cluster::GetVertexAttrBatch), and when
/// fault injection is active the Try* path is taken so failed messages
/// degrade to zero rows instead of aborting the gather.
class ClusterFeatureSource : public FeatureSource {
 public:
  ClusterFeatureSource(Cluster& cluster, WorkerId worker, size_t dim,
                       CommStats* stats)
      : cluster_(cluster), worker_(worker), dim_(dim), stats_(stats) {}

  size_t dim() const override { return dim_; }
  Status Gather(std::span<const VertexId> vertices, nn::Matrix* out,
                std::vector<uint8_t>* ok = nullptr) override;

 private:
  Cluster& cluster_;
  WorkerId worker_;
  size_t dim_;
  CommStats* stats_;
};

/// Materializes a block's [num_vertices, d] feature matrix: the GATHER
/// stage of block execution, callable on its own so the pipeline can
/// schedule it on a dedicated lane instead of running it inline after the
/// sample. Rows already held by `row_cache` (keyed hop 0 by global id) are
/// reused bitwise; only the missing residue is fetched from `source` and —
/// when the fetch succeeded — admitted to the cache. Only the residue's
/// bytes are charged to "block.gather_bytes"; rows whose fetch failed stay
/// zero and are NOT admitted. Pass a null cache for a plain full gather.
nn::Matrix GatherBlockFeatures(const SampledBlock& blk, FeatureSource& source,
                               ops::HopEmbeddingCache* row_cache);

}  // namespace block
}  // namespace aligraph

#endif  // ALIGRAPH_BLOCK_FEATURE_SOURCE_H_
