/// \file sampled_block.h
/// \brief Subgraph-block representation of a sampled k-hop neighborhood:
/// the deduplicated frontier relabeled to dense local ids plus one
/// local-id CSR per hop.
///
/// The legacy sampler output (NeighborhoodSample) is a flat vector of
/// global VertexIds per hop; every consumer that wants a vertex's feature
/// row or cached embedding pays a hash lookup per slot per hop, and the
/// same vertex's attributes are re-gathered once per occurrence. Systems
/// that succeeded AliGraph (BGL, GLISP) materialize the sampled
/// neighborhood as a compact relabeled block instead: unique vertices get
/// dense local ids [0, n), each hop becomes a CSR of local-id edges, and
/// the feature matrix is gathered exactly once per unique vertex. All
/// downstream work — AGGREGATE / COMBINE, hop-embedding caching, gradient
/// scatter — then runs on dense row indices with no hash in the hot loop.
///
/// Layout (two hops, fan-outs f1 / f2):
///
///   globals:  [ g0 g1 g2 ... g(n-1) ]        unique, local id == index
///   roots:    [ l(r0) l(r1) ... ]            local ids, one per root SLOT
///   hop 0:    dst = roots' slots             |dst| = B,   |src| = B*f1
///   hop 1:    dst = hop 0's src slots        |dst| = B*f1, |src| = B*f1*f2
///   features: [ n x d ] matrix               one row per unique vertex
///
/// Slots, not vertices, index the CSRs: the same vertex appearing in two
/// slots keeps two (independently drawn) neighbor sets, so block-based
/// aggregation is bit-identical to the legacy flat path on the same RNG
/// seed. Deduplication pays off in feature gathering (one row per unique
/// vertex instead of one per slot) and in cross-batch reuse of cached hop
/// embeddings keyed by (hop, global id).

#ifndef ALIGRAPH_BLOCK_SAMPLED_BLOCK_H_
#define ALIGRAPH_BLOCK_SAMPLED_BLOCK_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/types.h"
#include "nn/matrix.h"

namespace aligraph {
namespace block {

class FeatureSource;

/// \brief One hop's local-id CSR: destination SLOTS (positions in the
/// previous level, each annotated with the local id of the vertex that
/// occupies it) mapped to the local ids of their sampled neighbors.
struct BlockHop {
  uint32_t fan = 0;               ///< fixed fan-out of this hop
  std::vector<uint32_t> dst;      ///< local id per destination slot
  std::vector<uint32_t> offsets;  ///< size dst.size() + 1; stride == fan
  std::vector<uint32_t> src;      ///< local ids of drawn neighbors

  size_t num_dst() const { return dst.size(); }
  size_t num_edges() const { return src.size(); }
};

/// \brief A relabeled k-hop sample: unique frontier + per-hop CSRs +
/// (optionally) the gathered feature matrix.
class SampledBlock {
 public:
  static constexpr uint32_t kInvalidLocal = 0xffffffffu;

  SampledBlock() = default;

  /// Builds a block from the legacy flat representation: `hops[k]` is the
  /// flattened hop-k frontier (size roots.size() * fans[0] * ... * fans[k])
  /// exactly as NeighborhoodSample lays it out. Local ids are assigned in
  /// first-appearance order (roots first, then hop 0, ...), which makes the
  /// relabeling deterministic for a fixed sample.
  static SampledBlock Build(std::span<const VertexId> roots,
                            std::span<const std::vector<VertexId>> hops,
                            std::span<const uint32_t> fans);

  /// Unique frontier size n (dense local ids are [0, n)).
  size_t num_vertices() const { return globals_.size(); }
  std::span<const VertexId> globals() const { return globals_; }
  VertexId global_of(uint32_t local) const { return globals_[local]; }

  /// Local id of a global vertex, or kInvalidLocal when not in the block.
  uint32_t local_of(VertexId v) const {
    auto it = local_index_.find(v);
    return it == local_index_.end() ? kInvalidLocal : it->second;
  }

  /// Local id per root SLOT (duplicated roots keep duplicated slots).
  std::span<const uint32_t> root_locals() const { return root_locals_; }
  const std::vector<BlockHop>& hops() const { return hops_; }

  /// Total slot count across roots and every hop — the row count the
  /// un-deduplicated flat representation would gather features for.
  size_t total_slots() const;

  /// total_slots() / num_vertices(): how many feature-row gathers the
  /// relabeling saves (>= 1; 1 means no duplicates at all).
  double dedup_ratio() const;

  /// Gathers one feature row per unique vertex into features(), charging
  /// "block.gather_bytes" for the moved payload. Rows whose fetch failed
  /// (fallible sources under fault injection) stay zero and flip
  /// partial(); the block keeps its full shape either way. Returns the
  /// source's status.
  Status GatherFeatures(FeatureSource& source);

  /// The gathered [num_vertices, d] matrix; empty until GatherFeatures.
  const nn::Matrix& features() const { return features_; }
  bool has_features() const { return !features_.empty(); }

  /// True when the sample degraded under faults (stale / resampled slots)
  /// or a feature fetch exhausted its retry budget.
  bool partial() const { return partial_; }
  uint64_t degraded_draws() const { return degraded_draws_; }

  void set_partial(bool partial) { partial_ = partial; }
  void add_degraded_draws(uint64_t n) { degraded_draws_ += n; }

 private:
  std::vector<VertexId> globals_;
  std::unordered_map<VertexId, uint32_t> local_index_;
  std::vector<uint32_t> root_locals_;
  std::vector<BlockHop> hops_;
  nn::Matrix features_;
  bool partial_ = false;
  uint64_t degraded_draws_ = 0;
};

/// Materializes one row per local id in `locals` from a block's dense
/// [num_vertices, d] row matrix — bitwise copies, used where an operator
/// needs per-slot rows (e.g. the self side of COMBINE).
nn::Matrix GatherRows(const nn::Matrix& rows,
                      std::span<const uint32_t> locals);

}  // namespace block
}  // namespace aligraph

#endif  // ALIGRAPH_BLOCK_SAMPLED_BLOCK_H_
