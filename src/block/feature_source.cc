#include "block/feature_source.h"

#include <algorithm>
#include <cstring>

#include "cluster/cluster.h"
#include "common/logging.h"

namespace aligraph {
namespace block {

namespace {

/// Copies a (possibly shorter or longer) payload into a dim-wide row:
/// truncate past dim, leave the zero tail when the payload is shorter.
void CopyPadded(std::span<const float> payload, std::span<float> row) {
  const size_t n = std::min(payload.size(), row.size());
  if (n > 0) std::memcpy(row.data(), payload.data(), n * sizeof(float));
}

}  // namespace

Status MatrixFeatureSource::Gather(std::span<const VertexId> vertices,
                                   nn::Matrix* out,
                                   std::vector<uint8_t>* ok) {
  ALIGRAPH_CHECK_EQ(out->rows(), vertices.size());
  ALIGRAPH_CHECK_EQ(out->cols(), matrix_.cols());
  if (ok != nullptr) ok->assign(vertices.size(), 1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    const std::span<const float> src = matrix_.Row(vertices[i]);
    std::memcpy(out->Row(i).data(), src.data(), src.size() * sizeof(float));
  }
  return Status::OK();
}

Status GraphFeatureSource::Gather(std::span<const VertexId> vertices,
                                  nn::Matrix* out, std::vector<uint8_t>* ok) {
  ALIGRAPH_CHECK_EQ(out->rows(), vertices.size());
  ALIGRAPH_CHECK_EQ(out->cols(), dim_);
  if (ok != nullptr) ok->assign(vertices.size(), 1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    CopyPadded(graph_.VertexFeatures(vertices[i]), out->Row(i));
  }
  return Status::OK();
}

Status ClusterFeatureSource::Gather(std::span<const VertexId> vertices,
                                    nn::Matrix* out,
                                    std::vector<uint8_t>* ok) {
  ALIGRAPH_CHECK_EQ(out->rows(), vertices.size());
  ALIGRAPH_CHECK_EQ(out->cols(), dim_);
  std::vector<AttrId> ids;
  std::vector<uint8_t> slot_ok;
  Status status = Status::OK();
  if (cluster_.fault_injection_enabled()) {
    status = cluster_.TryGetVertexAttrBatch(worker_, vertices, &ids, &slot_ok,
                                            stats_);
  } else {
    cluster_.GetVertexAttrBatch(worker_, vertices, &ids, stats_);
    slot_ok.assign(vertices.size(), 1);
  }
  const AttributeStore& store = cluster_.graph().vertex_attributes();
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (slot_ok[i] == 0 || ids[i] == kNoAttr) continue;
    CopyPadded(store.Get(ids[i]), out->Row(i));
  }
  if (ok != nullptr) *ok = std::move(slot_ok);
  return status;
}

}  // namespace block
}  // namespace aligraph
