#include "block/feature_source.h"

#include <algorithm>
#include <cstring>

#include "block/sampled_block.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "ops/hop_cache.h"

namespace aligraph {
namespace block {

namespace {

/// Copies a (possibly shorter or longer) payload into a dim-wide row:
/// truncate past dim, leave the zero tail when the payload is shorter.
void CopyPadded(std::span<const float> payload, std::span<float> row) {
  const size_t n = std::min(payload.size(), row.size());
  if (n > 0) std::memcpy(row.data(), payload.data(), n * sizeof(float));
}

}  // namespace

Status MatrixFeatureSource::Gather(std::span<const VertexId> vertices,
                                   nn::Matrix* out,
                                   std::vector<uint8_t>* ok) {
  ALIGRAPH_CHECK_EQ(out->rows(), vertices.size());
  ALIGRAPH_CHECK_EQ(out->cols(), matrix_.cols());
  if (ok != nullptr) ok->assign(vertices.size(), 1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    const std::span<const float> src = matrix_.Row(vertices[i]);
    std::memcpy(out->Row(i).data(), src.data(), src.size() * sizeof(float));
  }
  return Status::OK();
}

Status GraphFeatureSource::Gather(std::span<const VertexId> vertices,
                                  nn::Matrix* out, std::vector<uint8_t>* ok) {
  ALIGRAPH_CHECK_EQ(out->rows(), vertices.size());
  ALIGRAPH_CHECK_EQ(out->cols(), dim_);
  if (ok != nullptr) ok->assign(vertices.size(), 1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    CopyPadded(graph_.VertexFeatures(vertices[i]), out->Row(i));
  }
  return Status::OK();
}

Status ClusterFeatureSource::Gather(std::span<const VertexId> vertices,
                                    nn::Matrix* out,
                                    std::vector<uint8_t>* ok) {
  ALIGRAPH_CHECK_EQ(out->rows(), vertices.size());
  ALIGRAPH_CHECK_EQ(out->cols(), dim_);
  std::vector<AttrId> ids;
  std::vector<uint8_t> slot_ok;
  Status status = Status::OK();
  if (cluster_.fault_injection_enabled()) {
    status = cluster_.TryGetVertexAttrBatch(worker_, vertices, &ids, &slot_ok,
                                            stats_);
  } else {
    cluster_.GetVertexAttrBatch(worker_, vertices, &ids, stats_);
    slot_ok.assign(vertices.size(), 1);
  }
  const AttributeStore& store = cluster_.graph().vertex_attributes();
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (slot_ok[i] == 0 || ids[i] == kNoAttr) continue;
    CopyPadded(store.Get(ids[i]), out->Row(i));
  }
  if (ok != nullptr) *ok = std::move(slot_ok);
  return status;
}

nn::Matrix GatherBlockFeatures(const SampledBlock& blk, FeatureSource& source,
                               ops::HopEmbeddingCache* row_cache) {
  nn::Matrix x(blk.num_vertices(), source.dim());
  std::vector<uint8_t> present;
  if (row_cache != nullptr) {
    row_cache->LookupRows(0, blk.globals(), &x, &present);
  } else {
    present.assign(blk.num_vertices(), 0);
  }
  std::vector<VertexId> missing;
  std::vector<uint32_t> missing_rows;
  for (size_t i = 0; i < blk.num_vertices(); ++i) {
    if (present[i] != 0) continue;
    missing.push_back(blk.globals()[i]);
    missing_rows.push_back(static_cast<uint32_t>(i));
  }
  if (missing.empty()) return x;
  nn::Matrix fetched(missing.size(), source.dim());
  std::vector<uint8_t> ok;
  (void)source.Gather(missing, &fetched, &ok);
  for (size_t k = 0; k < missing.size(); ++k) {
    auto src = fetched.Row(k);
    std::copy(src.begin(), src.end(), x.Row(missing_rows[k]).begin());
  }
  if (obs::Counter* bytes = obs::DefaultCounter("block.gather_bytes")) {
    bytes->Add(static_cast<uint64_t>(fetched.size()) * sizeof(float));
  }
  if (row_cache != nullptr) {
    // `ok` doubles as the skip mask: failed rows read 0 == "insert", so
    // flip it — only successfully fetched rows enter the cache.
    std::vector<uint8_t> skip(missing.size(), 0);
    for (size_t k = 0; k < missing.size(); ++k) skip[k] = ok[k] == 0 ? 1 : 0;
    row_cache->InsertRows(0, missing, fetched, &skip);
  }
  return x;
}

}  // namespace block
}  // namespace aligraph
