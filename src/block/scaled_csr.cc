#include "block/scaled_csr.h"

#include "common/logging.h"

namespace aligraph {
namespace block {

nn::Matrix ScaledCsr::Propagate(const nn::Matrix& h) const {
  const size_t n = num_vertices();
  ALIGRAPH_CHECK_EQ(h.rows(), n);
  nn::Matrix out(n, h.cols());
  for (VertexId v = 0; v < n; ++v) {
    auto dst = out.Row(v);
    nn::Axpy(self_scale[v], h.Row(v), dst);  // self loop always retained
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      nn::Axpy(scale[e], h.Row(src[e]), dst);
    }
  }
  return out;
}

nn::Matrix ScaledCsr::PropagateTransposed(const nn::Matrix& g) const {
  const size_t n = num_vertices();
  ALIGRAPH_CHECK_EQ(g.rows(), n);
  nn::Matrix out(n, g.cols());
  for (VertexId v = 0; v < n; ++v) {
    const auto row = g.Row(v);
    nn::Axpy(self_scale[v], row, out.Row(v));
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      nn::Axpy(scale[e], row, out.Row(src[e]));
    }
  }
  return out;
}

ScaledCsr BuildPropagationCsr(const AttributedGraph& graph,
                              const std::unordered_set<VertexId>* support,
                              double support_scale,
                              const std::vector<double>& degree_weight) {
  const VertexId n = graph.num_vertices();
  ScaledCsr csr;
  csr.self_scale.resize(n);
  csr.offsets.reserve(n + 1);
  csr.offsets.push_back(0);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbs = graph.OutNeighbors(v);
    const float inv = 1.0f / static_cast<float>(nbs.size() + 1);
    csr.self_scale[v] = inv;
    for (const Neighbor& nb : nbs) {
      if (support != nullptr && support->count(nb.dst) == 0) continue;
      csr.src.push_back(nb.dst);
      csr.scale.push_back(
          support == nullptr
              ? inv
              : inv * static_cast<float>(support_scale /
                                         degree_weight[nb.dst]));
    }
    csr.offsets.push_back(csr.src.size());
  }
  return csr;
}

}  // namespace block
}  // namespace aligraph
