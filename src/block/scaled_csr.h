/// \file scaled_csr.h
/// \brief Precompiled propagation structure for the (Fast/AS-)GCN path: the
/// row-normalized, support-restricted adjacency with per-edge scales baked
/// in, so the propagate hot loop is pure Axpy over a CSR — no hash-set
/// membership test and no scale recomputation per edge per call.
///
/// The legacy Gcn::Embed propagate lambda walks OutNeighbors(v) on every
/// call and asks `support->count(nb.dst)` per edge (a hash lookup in the
/// hot loop) and re-derives the importance-sampling scale per edge. One
/// training step calls propagate twice and its transpose once over the
/// same support set; compiling the support into a CSR once per step pays
/// for itself immediately. Edges are laid out in adjacency order and the
/// self loop is applied first, so Propagate / PropagateTransposed execute
/// the exact same float-operation sequence as the legacy lambdas —
/// bit-identical results on the same weights.

#ifndef ALIGRAPH_BLOCK_SCALED_CSR_H_
#define ALIGRAPH_BLOCK_SCALED_CSR_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "nn/matrix.h"

namespace aligraph {
namespace block {

/// \brief Row-normalized propagation matrix with self loops, restricted to
/// a support set, as a CSR with one precomputed scale per edge.
struct ScaledCsr {
  std::vector<float> self_scale;   ///< 1 / (deg(v) + 1) per vertex
  std::vector<uint64_t> offsets;   ///< size n + 1
  std::vector<VertexId> src;       ///< supported neighbors, adjacency order
  std::vector<float> scale;        ///< per-edge coefficient, same order

  size_t num_vertices() const { return self_scale.size(); }
  size_t num_edges() const { return src.size(); }

  /// out.Row(v) = self_scale[v] * h.Row(v) + sum_e scale[e] * h.Row(src[e]).
  /// Same float-op order as the legacy propagate lambda.
  nn::Matrix Propagate(const nn::Matrix& h) const;

  /// Transposed propagation for the backward pass:
  /// out.Row(v) += self_scale[v] * g.Row(v); out.Row(src[e]) += scale[e] *
  /// g.Row(v). Same float-op order as the legacy propagate_t lambda.
  nn::Matrix PropagateTransposed(const nn::Matrix& g) const;
};

/// Compiles the graph's row-normalized adjacency (with self loops) into a
/// ScaledCsr. `support` == nullptr keeps every edge with scale
/// 1 / (deg(v) + 1); otherwise edges to vertices outside the support are
/// dropped and kept edges get the importance-sampling coefficient
/// 1 / (deg(v) + 1) * support_scale / degree_weight[dst], matching the
/// legacy Gcn::Embed formula exactly.
ScaledCsr BuildPropagationCsr(const AttributedGraph& graph,
                              const std::unordered_set<VertexId>* support,
                              double support_scale,
                              const std::vector<double>& degree_weight);

}  // namespace block
}  // namespace aligraph

#endif  // ALIGRAPH_BLOCK_SCALED_CSR_H_
