#include "block/sampled_block.h"

#include <algorithm>

#include "block/feature_source.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aligraph {
namespace block {

SampledBlock SampledBlock::Build(std::span<const VertexId> roots,
                                 std::span<const std::vector<VertexId>> hops,
                                 std::span<const uint32_t> fans) {
  ALIGRAPH_CHECK_EQ(hops.size(), fans.size());
  Timer build_timer;
  SampledBlock block;
  // A k-hop tree over B roots has B * (1 + f1 + f1*f2 + ...) slots; unique
  // vertices are at most that many.
  size_t slots = roots.size();
  for (const auto& hop : hops) slots += hop.size();
  block.local_index_.reserve(slots);
  block.globals_.reserve(slots);

  auto relabel = [&block](VertexId v) {
    auto [it, inserted] = block.local_index_.try_emplace(
        v, static_cast<uint32_t>(block.globals_.size()));
    if (inserted) block.globals_.push_back(v);
    return it->second;
  };

  block.root_locals_.reserve(roots.size());
  for (const VertexId r : roots) block.root_locals_.push_back(relabel(r));

  // Level k's slots are level k-1's src entries: the CSR of hop k maps each
  // previous-level slot (annotated with its occupant's local id) to `fan`
  // freshly relabeled neighbors, preserving the flat layout's slot order.
  const std::vector<uint32_t>* prev_slots = &block.root_locals_;
  block.hops_.reserve(hops.size());
  for (size_t k = 0; k < hops.size(); ++k) {
    const uint32_t fan = fans[k];
    const std::vector<VertexId>& flat = hops[k];
    ALIGRAPH_CHECK_EQ(flat.size(), prev_slots->size() * fan);
    BlockHop hop;
    hop.fan = fan;
    hop.dst = *prev_slots;
    hop.offsets.reserve(hop.dst.size() + 1);
    hop.src.reserve(flat.size());
    for (size_t r = 0; r <= hop.dst.size(); ++r) {
      hop.offsets.push_back(static_cast<uint32_t>(r * fan));
    }
    for (const VertexId v : flat) hop.src.push_back(relabel(v));
    block.hops_.push_back(std::move(hop));
    prev_slots = &block.hops_.back().src;
  }

  if (obs::MetricsRegistry* reg = obs::Default()) {
    reg->GetHistogram("block.build_us", obs::LatencyBoundsUs())
        ->Record(build_timer.ElapsedMicros());
    reg->GetGauge("block.dedup_ratio")->Set(block.dedup_ratio());
  }
  return block;
}

size_t SampledBlock::total_slots() const {
  size_t slots = root_locals_.size();
  for (const BlockHop& hop : hops_) slots += hop.src.size();
  return slots;
}

double SampledBlock::dedup_ratio() const {
  if (globals_.empty()) return 1.0;
  return static_cast<double>(total_slots()) /
         static_cast<double>(globals_.size());
}

Status SampledBlock::GatherFeatures(FeatureSource& source) {
  obs::ScopedSpan span("block/gather");
  features_ = nn::Matrix(globals_.size(), source.dim());
  std::vector<uint8_t> ok;
  const Status st = source.Gather(globals_, &features_, &ok);
  if (!st.ok()) partial_ = true;
  if (obs::Counter* bytes = obs::DefaultCounter("block.gather_bytes")) {
    bytes->Add(static_cast<uint64_t>(features_.size()) * sizeof(float));
  }
  return st;
}

nn::Matrix GatherRows(const nn::Matrix& rows,
                      std::span<const uint32_t> locals) {
  nn::Matrix out(locals.size(), rows.cols());
  for (size_t i = 0; i < locals.size(); ++i) {
    const auto src = rows.Row(locals[i]);
    std::copy(src.begin(), src.end(), out.Row(i).begin());
  }
  return out;
}

}  // namespace block
}  // namespace aligraph
