/// \file operators.h
/// \brief The operator layer (Section 3.4): AGGREGATE and COMBINE as
/// plugins, each a forward + backward pair so models compose them into an
/// end-to-end trainable network.
///
/// AGGREGATE maps the sampled neighbor embeddings of a batch — a
/// [batch * fan, d] matrix with a fixed fan-out per root — to one vector per
/// root ([batch, d]). COMBINE fuses a root's previous-hop embedding with the
/// aggregate into the next-hop embedding.

#ifndef ALIGRAPH_OPS_OPERATORS_H_
#define ALIGRAPH_OPS_OPERATORS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layers.h"
#include "nn/matrix.h"

namespace aligraph {
namespace ops {

/// \brief AGGREGATE plugin: [batch*fan, d] -> [batch, d].
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual std::string name() const = 0;

  /// Forward; `fan` is the fixed neighbor count per root.
  virtual nn::Matrix Forward(const nn::Matrix& neighbors, size_t fan) = 0;

  /// Backward: gradient w.r.t. the neighbor matrix.
  virtual nn::Matrix Backward(const nn::Matrix& grad_out) = 0;
};

/// \brief Element-wise mean over each root's neighbors (GraphSAGE-mean,
/// GCN-style convolution).
class MeanAggregator : public Aggregator {
 public:
  std::string name() const override { return "mean"; }
  nn::Matrix Forward(const nn::Matrix& neighbors, size_t fan) override;
  nn::Matrix Backward(const nn::Matrix& grad_out) override;

 private:
  size_t fan_ = 1;
};

/// \brief Element-wise sum.
class SumAggregator : public Aggregator {
 public:
  std::string name() const override { return "sum"; }
  nn::Matrix Forward(const nn::Matrix& neighbors, size_t fan) override;
  nn::Matrix Backward(const nn::Matrix& grad_out) override;

 private:
  size_t fan_ = 1;
};

/// \brief Element-wise max with argmax routing in the backward pass
/// (GraphSAGE max-pooling without the pre-MLP).
class MaxPoolAggregator : public Aggregator {
 public:
  std::string name() const override { return "maxpool"; }
  nn::Matrix Forward(const nn::Matrix& neighbors, size_t fan) override;
  nn::Matrix Backward(const nn::Matrix& grad_out) override;

 private:
  size_t fan_ = 1;
  std::vector<uint32_t> argmax_;  // (batch*d) winner slot per output element
};

/// \brief COMBINE plugin: (self [n, din], aggregated [n, din]) -> [n, dout].
class Combiner {
 public:
  virtual ~Combiner() = default;
  virtual std::string name() const = 0;

  virtual nn::Matrix Forward(const nn::Matrix& self,
                             const nn::Matrix& aggregated) = 0;

  /// Backward: gradients w.r.t. (self, aggregated).
  virtual std::pair<nn::Matrix, nn::Matrix> Backward(
      const nn::Matrix& grad_out) = 0;

  /// Applies the optimizer to any trainable parameters.
  virtual void Apply(nn::Optimizer& opt) = 0;
};

/// \brief GraphSAGE-style combine: ReLU(W [self || agg] + b).
class ConcatCombiner : public Combiner {
 public:
  ConcatCombiner(size_t in_dim, size_t out_dim, Rng& rng)
      : linear_(2 * in_dim, out_dim, rng), in_dim_(in_dim) {}

  std::string name() const override { return "concat"; }
  nn::Matrix Forward(const nn::Matrix& self,
                     const nn::Matrix& aggregated) override;
  std::pair<nn::Matrix, nn::Matrix> Backward(
      const nn::Matrix& grad_out) override;
  void Apply(nn::Optimizer& opt) override { linear_.Apply(opt); }

 private:
  nn::Linear linear_;
  size_t in_dim_;
  nn::Matrix last_output_;
};

/// \brief GCN-style combine: ReLU(W (self + agg) + b).
class AddCombiner : public Combiner {
 public:
  AddCombiner(size_t in_dim, size_t out_dim, Rng& rng)
      : linear_(in_dim, out_dim, rng) {}

  std::string name() const override { return "add"; }
  nn::Matrix Forward(const nn::Matrix& self,
                     const nn::Matrix& aggregated) override;
  std::pair<nn::Matrix, nn::Matrix> Backward(
      const nn::Matrix& grad_out) override;
  void Apply(nn::Optimizer& opt) override { linear_.Apply(opt); }

 private:
  nn::Linear linear_;
  nn::Matrix last_output_;
};

/// Factory over aggregator names "mean" / "sum" / "maxpool".
std::unique_ptr<Aggregator> MakeAggregator(const std::string& name);

}  // namespace ops
}  // namespace aligraph

#endif  // ALIGRAPH_OPS_OPERATORS_H_
