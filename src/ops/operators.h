/// \file operators.h
/// \brief The operator layer (Section 3.4): AGGREGATE and COMBINE as
/// plugins, each a forward + backward pair so models compose them into an
/// end-to-end trainable network.
///
/// AGGREGATE maps the sampled neighbor embeddings of a batch — a
/// [batch * fan, d] matrix with a fixed fan-out per root — to one vector per
/// root ([batch, d]). COMBINE fuses a root's previous-hop embedding with the
/// aggregate into the next-hop embedding.

#ifndef ALIGRAPH_OPS_OPERATORS_H_
#define ALIGRAPH_OPS_OPERATORS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "block/sampled_block.h"
#include "nn/layers.h"
#include "nn/matrix.h"

namespace aligraph {
namespace ops {

/// \brief AGGREGATE plugin: [batch*fan, d] -> [batch, d].
///
/// Two input conventions are supported. The legacy Forward takes a
/// materialized per-SLOT neighbor matrix (one row per sampled slot, with
/// duplicated vertices duplicated); ForwardBlock takes the deduplicated
/// per-VERTEX row matrix of a block::SampledBlock plus the hop CSR and
/// indexes rows directly — no per-slot materialization, no hash lookups.
/// Both run the identical float-operation sequence, so their outputs are
/// bitwise equal for the same underlying rows.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual std::string name() const = 0;

  /// Forward; `fan` is the fixed neighbor count per root.
  virtual nn::Matrix Forward(const nn::Matrix& neighbors, size_t fan) = 0;

  /// Backward: gradient w.r.t. the neighbor matrix.
  virtual nn::Matrix Backward(const nn::Matrix& grad_out) = 0;

  /// Block forward: out.Row(r) aggregates rows.Row(hop.src[e]) for e in
  /// [hop.offsets[r], hop.offsets[r + 1]), in edge order. `rows` is a
  /// block's [num_vertices, d] per-unique-vertex matrix. The hop is
  /// retained by pointer for BackwardBlock and must outlive it.
  virtual nn::Matrix ForwardBlock(const nn::Matrix& rows,
                                  const block::BlockHop& hop) = 0;

  /// Block backward: scatters grad_out back onto the dense row matrix,
  /// returning a [num_rows, d] gradient with one row per unique vertex
  /// (duplicated slots accumulate). Equals the legacy Backward output
  /// accumulated per vertex in slot order, bit for bit.
  virtual nn::Matrix BackwardBlock(const nn::Matrix& grad_out,
                                   size_t num_rows) = 0;
};

/// \brief Element-wise mean over each root's neighbors (GraphSAGE-mean,
/// GCN-style convolution).
class MeanAggregator : public Aggregator {
 public:
  std::string name() const override { return "mean"; }
  nn::Matrix Forward(const nn::Matrix& neighbors, size_t fan) override;
  nn::Matrix Backward(const nn::Matrix& grad_out) override;
  nn::Matrix ForwardBlock(const nn::Matrix& rows,
                          const block::BlockHop& hop) override;
  nn::Matrix BackwardBlock(const nn::Matrix& grad_out,
                           size_t num_rows) override;

 private:
  size_t fan_ = 1;
  const block::BlockHop* hop_ = nullptr;
};

/// \brief Element-wise sum.
class SumAggregator : public Aggregator {
 public:
  std::string name() const override { return "sum"; }
  nn::Matrix Forward(const nn::Matrix& neighbors, size_t fan) override;
  nn::Matrix Backward(const nn::Matrix& grad_out) override;
  nn::Matrix ForwardBlock(const nn::Matrix& rows,
                          const block::BlockHop& hop) override;
  nn::Matrix BackwardBlock(const nn::Matrix& grad_out,
                           size_t num_rows) override;

 private:
  size_t fan_ = 1;
  const block::BlockHop* hop_ = nullptr;
};

/// \brief Element-wise max with argmax routing in the backward pass
/// (GraphSAGE max-pooling without the pre-MLP).
class MaxPoolAggregator : public Aggregator {
 public:
  std::string name() const override { return "maxpool"; }
  nn::Matrix Forward(const nn::Matrix& neighbors, size_t fan) override;
  nn::Matrix Backward(const nn::Matrix& grad_out) override;
  nn::Matrix ForwardBlock(const nn::Matrix& rows,
                          const block::BlockHop& hop) override;
  nn::Matrix BackwardBlock(const nn::Matrix& grad_out,
                           size_t num_rows) override;

 private:
  size_t fan_ = 1;
  std::vector<uint32_t> argmax_;  // (batch*d) winner slot per output element
  const block::BlockHop* hop_ = nullptr;
};

/// \brief COMBINE plugin: (self [n, din], aggregated [n, din]) -> [n, dout].
class Combiner {
 public:
  virtual ~Combiner() = default;
  virtual std::string name() const = 0;

  virtual nn::Matrix Forward(const nn::Matrix& self,
                             const nn::Matrix& aggregated) = 0;

  /// Backward: gradients w.r.t. (self, aggregated).
  virtual std::pair<nn::Matrix, nn::Matrix> Backward(
      const nn::Matrix& grad_out) = 0;

  /// Block combine: the self matrix is the block's dense rows indexed by
  /// the hop's destination slots (one row per dst slot, duplicates kept).
  /// Delegates to Forward after the gather, so outputs and the Backward
  /// pairing are unchanged.
  nn::Matrix ForwardBlock(const nn::Matrix& rows, const block::BlockHop& hop,
                          const nn::Matrix& aggregated);

  /// Applies the optimizer to any trainable parameters.
  virtual void Apply(nn::Optimizer& opt) = 0;
};

/// \brief GraphSAGE-style combine: ReLU(W [self || agg] + b).
class ConcatCombiner : public Combiner {
 public:
  ConcatCombiner(size_t in_dim, size_t out_dim, Rng& rng)
      : linear_(2 * in_dim, out_dim, rng), in_dim_(in_dim) {}

  std::string name() const override { return "concat"; }
  nn::Matrix Forward(const nn::Matrix& self,
                     const nn::Matrix& aggregated) override;
  std::pair<nn::Matrix, nn::Matrix> Backward(
      const nn::Matrix& grad_out) override;
  void Apply(nn::Optimizer& opt) override { linear_.Apply(opt); }

 private:
  nn::Linear linear_;
  size_t in_dim_;
  nn::Matrix last_output_;
};

/// \brief GCN-style combine: ReLU(W (self + agg) + b).
class AddCombiner : public Combiner {
 public:
  AddCombiner(size_t in_dim, size_t out_dim, Rng& rng)
      : linear_(in_dim, out_dim, rng) {}

  std::string name() const override { return "add"; }
  nn::Matrix Forward(const nn::Matrix& self,
                     const nn::Matrix& aggregated) override;
  std::pair<nn::Matrix, nn::Matrix> Backward(
      const nn::Matrix& grad_out) override;
  void Apply(nn::Optimizer& opt) override { linear_.Apply(opt); }

 private:
  nn::Linear linear_;
  nn::Matrix last_output_;
};

/// Factory over aggregator names "mean" / "sum" / "maxpool".
std::unique_ptr<Aggregator> MakeAggregator(const std::string& name);

}  // namespace ops
}  // namespace aligraph

#endif  // ALIGRAPH_OPS_OPERATORS_H_
