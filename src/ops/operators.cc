#include "ops/operators.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace aligraph {
namespace ops {

using nn::Matrix;

Matrix MeanAggregator::Forward(const Matrix& neighbors, size_t fan) {
  obs::ScopedSpan span("aggregate/fwd");
  ALIGRAPH_CHECK_GT(fan, 0u);
  ALIGRAPH_CHECK_EQ(neighbors.rows() % fan, 0u);
  fan_ = fan;
  const size_t batch = neighbors.rows() / fan;
  const size_t d = neighbors.cols();
  Matrix out(batch, d);
  const float inv = 1.0f / static_cast<float>(fan);
  for (size_t b = 0; b < batch; ++b) {
    auto dst = out.Row(b);
    for (size_t f = 0; f < fan; ++f) {
      nn::Axpy(inv, neighbors.Row(b * fan + f), dst);
    }
  }
  return out;
}

Matrix MeanAggregator::Backward(const Matrix& grad_out) {
  obs::ScopedSpan span("aggregate/bwd");
  const size_t batch = grad_out.rows();
  Matrix grad(batch * fan_, grad_out.cols());
  const float inv = 1.0f / static_cast<float>(fan_);
  for (size_t b = 0; b < batch; ++b) {
    auto src = grad_out.Row(b);
    for (size_t f = 0; f < fan_; ++f) {
      nn::Axpy(inv, src, grad.Row(b * fan_ + f));
    }
  }
  return grad;
}

Matrix MeanAggregator::ForwardBlock(const Matrix& rows,
                                    const block::BlockHop& hop) {
  obs::ScopedSpan span("aggregate/fwd");
  ALIGRAPH_CHECK_GT(hop.fan, 0u);
  fan_ = hop.fan;
  hop_ = &hop;
  const size_t d = rows.cols();
  Matrix out(hop.num_dst(), d);
  const float inv = 1.0f / static_cast<float>(hop.fan);
  for (size_t r = 0; r < hop.num_dst(); ++r) {
    auto dst = out.Row(r);
    for (uint32_t e = hop.offsets[r]; e < hop.offsets[r + 1]; ++e) {
      nn::Axpy(inv, rows.Row(hop.src[e]), dst);
    }
  }
  return out;
}

Matrix MeanAggregator::BackwardBlock(const Matrix& grad_out,
                                     size_t num_rows) {
  obs::ScopedSpan span("aggregate/bwd");
  ALIGRAPH_CHECK(hop_ != nullptr);
  Matrix grad(num_rows, grad_out.cols());
  const float inv = 1.0f / static_cast<float>(fan_);
  for (size_t r = 0; r < hop_->num_dst(); ++r) {
    auto src = grad_out.Row(r);
    for (uint32_t e = hop_->offsets[r]; e < hop_->offsets[r + 1]; ++e) {
      nn::Axpy(inv, src, grad.Row(hop_->src[e]));
    }
  }
  return grad;
}

Matrix SumAggregator::Forward(const Matrix& neighbors, size_t fan) {
  obs::ScopedSpan span("aggregate/fwd");
  ALIGRAPH_CHECK_GT(fan, 0u);
  ALIGRAPH_CHECK_EQ(neighbors.rows() % fan, 0u);
  fan_ = fan;
  const size_t batch = neighbors.rows() / fan;
  Matrix out(batch, neighbors.cols());
  for (size_t b = 0; b < batch; ++b) {
    auto dst = out.Row(b);
    for (size_t f = 0; f < fan; ++f) {
      nn::Axpy(1.0f, neighbors.Row(b * fan + f), dst);
    }
  }
  return out;
}

Matrix SumAggregator::Backward(const Matrix& grad_out) {
  obs::ScopedSpan span("aggregate/bwd");
  const size_t batch = grad_out.rows();
  Matrix grad(batch * fan_, grad_out.cols());
  for (size_t b = 0; b < batch; ++b) {
    auto src = grad_out.Row(b);
    for (size_t f = 0; f < fan_; ++f) {
      nn::Axpy(1.0f, src, grad.Row(b * fan_ + f));
    }
  }
  return grad;
}

Matrix SumAggregator::ForwardBlock(const Matrix& rows,
                                   const block::BlockHop& hop) {
  obs::ScopedSpan span("aggregate/fwd");
  ALIGRAPH_CHECK_GT(hop.fan, 0u);
  fan_ = hop.fan;
  hop_ = &hop;
  Matrix out(hop.num_dst(), rows.cols());
  for (size_t r = 0; r < hop.num_dst(); ++r) {
    auto dst = out.Row(r);
    for (uint32_t e = hop.offsets[r]; e < hop.offsets[r + 1]; ++e) {
      nn::Axpy(1.0f, rows.Row(hop.src[e]), dst);
    }
  }
  return out;
}

Matrix SumAggregator::BackwardBlock(const Matrix& grad_out, size_t num_rows) {
  obs::ScopedSpan span("aggregate/bwd");
  ALIGRAPH_CHECK(hop_ != nullptr);
  Matrix grad(num_rows, grad_out.cols());
  for (size_t r = 0; r < hop_->num_dst(); ++r) {
    auto src = grad_out.Row(r);
    for (uint32_t e = hop_->offsets[r]; e < hop_->offsets[r + 1]; ++e) {
      nn::Axpy(1.0f, src, grad.Row(hop_->src[e]));
    }
  }
  return grad;
}

Matrix MaxPoolAggregator::Forward(const Matrix& neighbors, size_t fan) {
  obs::ScopedSpan span("aggregate/fwd");
  ALIGRAPH_CHECK_GT(fan, 0u);
  ALIGRAPH_CHECK_EQ(neighbors.rows() % fan, 0u);
  fan_ = fan;
  const size_t batch = neighbors.rows() / fan;
  const size_t d = neighbors.cols();
  Matrix out(batch, d);
  argmax_.assign(batch * d, 0);
  for (size_t b = 0; b < batch; ++b) {
    auto dst = out.Row(b);
    for (size_t j = 0; j < d; ++j) dst[j] = neighbors.At(b * fan, j);
    for (size_t f = 1; f < fan; ++f) {
      auto src = neighbors.Row(b * fan + f);
      for (size_t j = 0; j < d; ++j) {
        if (src[j] > dst[j]) {
          dst[j] = src[j];
          argmax_[b * d + j] = static_cast<uint32_t>(f);
        }
      }
    }
  }
  return out;
}

Matrix MaxPoolAggregator::Backward(const Matrix& grad_out) {
  obs::ScopedSpan span("aggregate/bwd");
  const size_t batch = grad_out.rows();
  const size_t d = grad_out.cols();
  Matrix grad(batch * fan_, d);
  for (size_t b = 0; b < batch; ++b) {
    auto src = grad_out.Row(b);
    for (size_t j = 0; j < d; ++j) {
      grad.At(b * fan_ + argmax_[b * d + j], j) = src[j];
    }
  }
  return grad;
}

Matrix MaxPoolAggregator::ForwardBlock(const Matrix& rows,
                                       const block::BlockHop& hop) {
  obs::ScopedSpan span("aggregate/fwd");
  ALIGRAPH_CHECK_GT(hop.fan, 0u);
  fan_ = hop.fan;
  hop_ = &hop;
  const size_t d = rows.cols();
  Matrix out(hop.num_dst(), d);
  argmax_.assign(hop.num_dst() * d, 0);
  for (size_t r = 0; r < hop.num_dst(); ++r) {
    auto dst = out.Row(r);
    const uint32_t begin = hop.offsets[r];
    auto first = rows.Row(hop.src[begin]);
    for (size_t j = 0; j < d; ++j) dst[j] = first[j];
    for (uint32_t e = begin + 1; e < hop.offsets[r + 1]; ++e) {
      auto src = rows.Row(hop.src[e]);
      for (size_t j = 0; j < d; ++j) {
        if (src[j] > dst[j]) {
          dst[j] = src[j];
          argmax_[r * d + j] = e - begin;
        }
      }
    }
  }
  return out;
}

Matrix MaxPoolAggregator::BackwardBlock(const Matrix& grad_out,
                                        size_t num_rows) {
  obs::ScopedSpan span("aggregate/bwd");
  ALIGRAPH_CHECK(hop_ != nullptr);
  const size_t d = grad_out.cols();
  Matrix grad(num_rows, d);
  for (size_t r = 0; r < hop_->num_dst(); ++r) {
    auto src = grad_out.Row(r);
    for (size_t j = 0; j < d; ++j) {
      const uint32_t e = hop_->offsets[r] + argmax_[r * d + j];
      grad.At(hop_->src[e], j) += src[j];
    }
  }
  return grad;
}

Matrix Combiner::ForwardBlock(const Matrix& rows, const block::BlockHop& hop,
                              const Matrix& aggregated) {
  return Forward(block::GatherRows(rows, hop.dst), aggregated);
}

Matrix ConcatCombiner::Forward(const Matrix& self, const Matrix& aggregated) {
  obs::ScopedSpan span("combine/fwd");
  Matrix y = linear_.Forward(nn::ConcatCols(self, aggregated));
  nn::ReluInPlace(y);
  last_output_ = y;
  return y;
}

std::pair<Matrix, Matrix> ConcatCombiner::Backward(const Matrix& grad_out) {
  obs::ScopedSpan span("combine/bwd");
  const Matrix relu_grad = nn::ReluBackward(last_output_, grad_out);
  const Matrix dconcat = linear_.Backward(relu_grad);
  Matrix dself(dconcat.rows(), in_dim_);
  Matrix dagg(dconcat.rows(), in_dim_);
  for (size_t i = 0; i < dconcat.rows(); ++i) {
    auto src = dconcat.Row(i);
    auto s = dself.Row(i);
    auto a = dagg.Row(i);
    for (size_t j = 0; j < in_dim_; ++j) {
      s[j] = src[j];
      a[j] = src[in_dim_ + j];
    }
  }
  return {std::move(dself), std::move(dagg)};
}

Matrix AddCombiner::Forward(const Matrix& self, const Matrix& aggregated) {
  obs::ScopedSpan span("combine/fwd");
  Matrix sum = self;
  sum += aggregated;
  Matrix y = linear_.Forward(sum);
  nn::ReluInPlace(y);
  last_output_ = y;
  return y;
}

std::pair<Matrix, Matrix> AddCombiner::Backward(const Matrix& grad_out) {
  obs::ScopedSpan span("combine/bwd");
  const Matrix relu_grad = nn::ReluBackward(last_output_, grad_out);
  Matrix dsum = linear_.Backward(relu_grad);
  return {dsum, dsum};
}

std::unique_ptr<Aggregator> MakeAggregator(const std::string& name) {
  if (name == "mean") return std::make_unique<MeanAggregator>();
  if (name == "sum") return std::make_unique<SumAggregator>();
  if (name == "maxpool") return std::make_unique<MaxPoolAggregator>();
  ALIGRAPH_LOG(Fatal) << "unknown aggregator: " << name;
  return nullptr;
}

}  // namespace ops
}  // namespace aligraph
