/// \file hop_cache.h
/// \brief Materialization cache of intermediate per-hop embedding vectors
/// (Section 3.4): within a mini-batch the sampled neighbor set is shared, so
/// each vertex's hop-k embedding h^(k)_v is computed once and reused,
/// eliminating the redundant recomputation that dominates naive AGGREGATE /
/// COMBINE evaluation. This cache is the source of the Table 5 ~13x
/// operator speedup.

#ifndef ALIGRAPH_OPS_HOP_CACHE_H_
#define ALIGRAPH_OPS_HOP_CACHE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "nn/matrix.h"

namespace aligraph {

namespace obs {
class Counter;
}  // namespace obs

namespace ops {

/// \brief Per-mini-batch store of hˆ(k)_v rows, keyed by (hop, vertex).
///
/// Lookups also feed the "hop_cache.hits" / "hop_cache.misses" counters of
/// the default metrics registry when one is attached at construction, so
/// reports can derive the Table 5 hit ratio without reaching into the
/// class.
class HopEmbeddingCache {
 public:
  explicit HopEmbeddingCache(size_t dim);

  /// Returns the cached row, or an empty span on miss.
  std::span<const float> Lookup(int hop, VertexId v);

  /// Stores (overwrites) the row for (hop, v).
  void Insert(int hop, VertexId v, std::span<const float> row);

  /// Block-level batched lookup: for each global id of a block's unique
  /// frontier, copies the cached (hop, id) row into rows->Row(i) and sets
  /// (*present)[i] = 1; missed slots are untouched with the flag at 0.
  /// Because blocks key rows by GLOBAL vertex id, entries inserted by one
  /// batch are reused by every later batch that samples the same vertex —
  /// hits are additionally counted into "block.reused_rows". Returns the
  /// number of hits.
  size_t LookupRows(int hop, std::span<const VertexId> globals,
                    nn::Matrix* rows, std::vector<uint8_t>* present);

  /// Batched insert of a block's per-vertex rows. When `only_missing` is
  /// non-null (the `present` vector of a prior LookupRows), slots already
  /// present are skipped instead of overwritten.
  void InsertRows(int hop, std::span<const VertexId> globals,
                  const nn::Matrix& rows,
                  const std::vector<uint8_t>* only_missing = nullptr);

  /// Clears all entries; call at mini-batch boundaries.
  void Reset();

  size_t size() const { return index_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  double HitRate() const {
    const size_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

 private:
  static uint64_t Key(int hop, VertexId v) {
    return (static_cast<uint64_t>(hop) << 40) | v;
  }

  size_t dim_;
  std::unordered_map<uint64_t, size_t> index_;  // key -> row offset
  std::vector<float> storage_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_reused_rows_ = nullptr;
};

}  // namespace ops
}  // namespace aligraph

#endif  // ALIGRAPH_OPS_HOP_CACHE_H_
