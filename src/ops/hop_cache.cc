#include "ops/hop_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace aligraph {
namespace ops {

HopEmbeddingCache::HopEmbeddingCache(size_t dim)
    : dim_(dim),
      obs_hits_(obs::DefaultCounter("hop_cache.hits")),
      obs_misses_(obs::DefaultCounter("hop_cache.misses")),
      obs_reused_rows_(obs::DefaultCounter("block.reused_rows")) {}

std::span<const float> HopEmbeddingCache::Lookup(int hop, VertexId v) {
  auto it = index_.find(Key(hop, v));
  if (it == index_.end()) {
    ++misses_;
    if (obs_misses_ != nullptr) obs_misses_->Add(1);
    return {};
  }
  ++hits_;
  if (obs_hits_ != nullptr) obs_hits_->Add(1);
  return {storage_.data() + it->second, dim_};
}

void HopEmbeddingCache::Insert(int hop, VertexId v,
                               std::span<const float> row) {
  ALIGRAPH_CHECK_EQ(row.size(), dim_);
  const uint64_t key = Key(hop, v);
  auto it = index_.find(key);
  if (it == index_.end()) {
    const size_t offset = storage_.size();
    storage_.insert(storage_.end(), row.begin(), row.end());
    index_[key] = offset;
  } else {
    std::copy(row.begin(), row.end(), storage_.begin() + it->second);
  }
}

size_t HopEmbeddingCache::LookupRows(int hop,
                                     std::span<const VertexId> globals,
                                     nn::Matrix* rows,
                                     std::vector<uint8_t>* present) {
  ALIGRAPH_CHECK_EQ(rows->rows(), globals.size());
  ALIGRAPH_CHECK_EQ(rows->cols(), dim_);
  present->assign(globals.size(), 0);
  size_t found = 0;
  for (size_t i = 0; i < globals.size(); ++i) {
    auto it = index_.find(Key(hop, globals[i]));
    if (it == index_.end()) {
      ++misses_;
      continue;
    }
    std::copy(storage_.begin() + it->second,
              storage_.begin() + it->second + dim_, rows->Row(i).begin());
    (*present)[i] = 1;
    ++hits_;
    ++found;
  }
  if (obs_hits_ != nullptr && found > 0) obs_hits_->Add(found);
  if (obs_misses_ != nullptr && found < globals.size()) {
    obs_misses_->Add(globals.size() - found);
  }
  if (obs_reused_rows_ != nullptr && found > 0) obs_reused_rows_->Add(found);
  return found;
}

void HopEmbeddingCache::InsertRows(int hop, std::span<const VertexId> globals,
                                   const nn::Matrix& rows,
                                   const std::vector<uint8_t>* only_missing) {
  ALIGRAPH_CHECK_EQ(rows.rows(), globals.size());
  ALIGRAPH_CHECK_EQ(rows.cols(), dim_);
  for (size_t i = 0; i < globals.size(); ++i) {
    if (only_missing != nullptr && (*only_missing)[i] != 0) continue;
    Insert(hop, globals[i], rows.Row(i));
  }
}

void HopEmbeddingCache::Reset() {
  index_.clear();
  storage_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace ops
}  // namespace aligraph
