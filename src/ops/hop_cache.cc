#include "ops/hop_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace aligraph {
namespace ops {

HopEmbeddingCache::HopEmbeddingCache(size_t dim)
    : dim_(dim),
      obs_hits_(obs::DefaultCounter("hop_cache.hits")),
      obs_misses_(obs::DefaultCounter("hop_cache.misses")) {}

std::span<const float> HopEmbeddingCache::Lookup(int hop, VertexId v) {
  auto it = index_.find(Key(hop, v));
  if (it == index_.end()) {
    ++misses_;
    if (obs_misses_ != nullptr) obs_misses_->Add(1);
    return {};
  }
  ++hits_;
  if (obs_hits_ != nullptr) obs_hits_->Add(1);
  return {storage_.data() + it->second, dim_};
}

void HopEmbeddingCache::Insert(int hop, VertexId v,
                               std::span<const float> row) {
  ALIGRAPH_CHECK_EQ(row.size(), dim_);
  const uint64_t key = Key(hop, v);
  auto it = index_.find(key);
  if (it == index_.end()) {
    const size_t offset = storage_.size();
    storage_.insert(storage_.end(), row.begin(), row.end());
    index_[key] = offset;
  } else {
    std::copy(row.begin(), row.end(), storage_.begin() + it->second);
  }
}

void HopEmbeddingCache::Reset() {
  index_.clear();
  storage_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace ops
}  // namespace aligraph
